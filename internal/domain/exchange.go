package domain

import (
	"fmt"
	"sort"
	"sync"

	"hacc/internal/mpi"
)

// The planned exchange gives every Begin a fresh tag from a rolling
// sequence, so collectives that overlap in flight (a deferred RefreshEnd
// racing the next step's MigrateBegin) can never mismatch messages: the
// in-process mpi matches on (source, tag), and every rank advances the
// sequence at the same collectively-ordered Begin calls. Each plan instance
// additionally gets its own tag block (plans are built in the same
// collective order on every rank, so the per-comm instance numbering
// agrees), so two plans in flight on one communicator cannot collide
// either. The domain block 0x100000–0x1fffff is disjoint from the grid
// exchanger's 0x200000–0x2fffff and the pfft redistributor tag.
const tagExchangeBase = 0x100000

var (
	planIDMu sync.Mutex
	planIDs  = map[*mpi.Comm]int{}
)

// nextPlanID numbers the exchange plans built on one communicator (this
// rank's view of it); collective construction order makes it agree across
// ranks.
func nextPlanID(c *mpi.Comm) int {
	planIDMu.Lock()
	defer planIDMu.Unlock()
	id := planIDs[c]
	planIDs[c] = id + 1
	return id
}

const (
	pendNone = iota
	pendMigrate
	pendRefresh
)

// exLeg is one planned point-to-point transfer leg: a neighbor rank, the
// catch entries routed to it, and persistent pack/index/request storage so
// the warm exchange path allocates nothing.
type exLeg struct {
	rank    int
	catches []int32 // indices into Domain.catches targeting this rank, ascending
	idx     []int32 // migrate scratch: particle indices bound for this rank
	packed  []uint64
	req     mpi.Request
}

// ExchangePlan is the persistent neighbor-stencil particle-exchange plan, in
// the style of pfft.Redistributor: the neighbor set is derived once from the
// domain geometry, so Migrate and Refresh become point-to-point legs over at
// most the 26-stencil of sub-box neighbors (one packed message per leg per
// collective) instead of dense all-to-all sweeps over every rank. Both
// collectives split into Begin (classify + pack + post Isends/Irecvs) and
// End (wait + unpack), which is what lets core hide the exchange behind
// computation; all index lists, pack buffers, and requests are plan-owned.
//
// A plan is collective state: every rank builds it in Domain.New and must
// issue Begin/End calls in the same collective order.
type ExchangePlan struct {
	d *Domain

	legs    []exLeg // ascending rank order, self excluded
	rankLeg []int32 // comm rank -> index into legs, -1 when not a neighbor

	selfCatches []int32 // catches with rank == me (periodic self-images)
	selfPacked  []uint64

	// Single-pass refresh classification: the catch boxes are axis-aligned,
	// so their bounds cut the rank's box into a small grid of intervals per
	// axis (bp); every interval triple is covered by a fixed catch subset
	// (hits), precomputed at plan time. Classifying a particle is then three
	// tiny interval lookups plus appends to the catch index lists, one O(N)
	// pass in total, instead of one full particle scan per catch entry.
	bp       [3][]float64
	nIv      [3]int
	hits     [][]int32
	catchIdx [][]int32 // per-catch particle index lists, reused across steps

	id      int
	seq     int
	pending int

	neighbors []int // lazily materialized leg-rank list for Neighbors
}

// newExchangePlan derives the neighbor stencil and classification table.
// Purely local (no communication).
func newExchangePlan(d *Domain) *ExchangePlan {
	me := d.Comm.Rank()
	p := d.Comm.Size()
	pl := &ExchangePlan{d: d, id: nextPlanID(d.Comm), rankLeg: make([]int32, p)}
	for i := range pl.rankLeg {
		pl.rankLeg[i] = -1
	}

	// Neighbor membership uses reach = overload + 2 cells, matching the
	// deposit halo in core (overload shell + CIC stencil + drift margin):
	// any particle the field indexing admits must have a leg to its owner
	// at Migrate time. Refresh traffic (catch geometry, width Ov < reach,
	// tested with the same overlapWithin the catches are built from) is
	// then automatically confined to the same legs.
	reach := d.Ov + 2
	n := d.Dec.N
	for r := 0; r < p; r++ {
		if r == me {
			continue
		}
		rb := d.Dec.Box(r)
		near := false
		for sx := -1; sx <= 1 && !near; sx++ {
			for sy := -1; sy <= 1 && !near; sy++ {
				for sz := -1; sz <= 1 && !near; sz++ {
					shift := [3]float64{float64(sx * n[0]), float64(sy * n[1]), float64(sz * n[2])}
					_, ok := overlapWithin(d.Box, rb, reach, shift)
					near = near || ok
				}
			}
		}
		if near {
			pl.rankLeg[r] = int32(len(pl.legs))
			pl.legs = append(pl.legs, exLeg{rank: r})
		}
	}

	// Route catch entries onto legs (global catch order is preserved within
	// each leg, which keeps planned pack order bitwise identical to the
	// dense path's per-rank buffers).
	for ci, c := range d.catches {
		if c.rank == me {
			pl.selfCatches = append(pl.selfCatches, int32(ci))
			continue
		}
		li := pl.rankLeg[c.rank]
		if li < 0 {
			panic(fmt.Sprintf("domain: catch targets rank %d outside the %g-cell neighbor stencil", c.rank, reach))
		}
		pl.legs[li].catches = append(pl.legs[li].catches, int32(ci))
	}

	// Classification table: per-axis breakpoints are the catch box bounds
	// (already clamped to my box), so catch membership is constant on every
	// interval and the midpoint test below is exact.
	for axis := 0; axis < 3; axis++ {
		bp := []float64{float64(d.Box.Lo[axis]), float64(d.Box.Hi[axis])}
		for _, c := range d.catches {
			bp = append(bp, c.box.lo[axis], c.box.hi[axis])
		}
		sort.Float64s(bp)
		uniq := bp[:1]
		for _, v := range bp[1:] {
			if v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		pl.bp[axis] = uniq
		pl.nIv[axis] = len(uniq) - 1
	}
	cov := make([][3][]bool, len(d.catches))
	for ci, c := range d.catches {
		for axis := 0; axis < 3; axis++ {
			bp := pl.bp[axis]
			cv := make([]bool, pl.nIv[axis])
			for i := range cv {
				mid := 0.5 * (bp[i] + bp[i+1])
				cv[i] = mid >= c.box.lo[axis] && mid < c.box.hi[axis]
			}
			cov[ci][axis] = cv
		}
	}
	pl.hits = make([][]int32, pl.nIv[0]*pl.nIv[1]*pl.nIv[2])
	for ix := 0; ix < pl.nIv[0]; ix++ {
		for iy := 0; iy < pl.nIv[1]; iy++ {
			for iz := 0; iz < pl.nIv[2]; iz++ {
				var list []int32
				for ci := range d.catches {
					if cov[ci][0][ix] && cov[ci][1][iy] && cov[ci][2][iz] {
						list = append(list, int32(ci))
					}
				}
				pl.hits[(ix*pl.nIv[1]+iy)*pl.nIv[2]+iz] = list
			}
		}
	}
	pl.catchIdx = make([][]int32, len(d.catches))
	return pl
}

// NumLegs returns the number of point-to-point neighbor legs (per-collective
// messages sent by this rank), for message-count accounting.
func (pl *ExchangePlan) NumLegs() int { return len(pl.legs) }

// Neighbors returns the neighbor ranks of this rank's 26-stencil exchange
// legs, in leg (ascending rank) order. The slice is plan-owned; callers that
// build their own point-to-point protocols over the same stencil (the
// analysis stitch, for one) must not modify it.
func (pl *ExchangePlan) Neighbors() []int {
	if pl.neighbors == nil {
		pl.neighbors = make([]int, len(pl.legs))
		for i := range pl.legs {
			pl.neighbors[i] = pl.legs[i].rank
		}
	}
	return pl.neighbors
}

func (pl *ExchangePlan) nextTag() int {
	t := tagExchangeBase | (pl.id&0xff)<<12 | (pl.seq & 0xfff)
	pl.seq++
	return t
}

// interval returns the index i with bp[i] <= x < bp[i+1]. bp is tiny (a
// handful of catch bounds), so a linear scan beats a binary search.
func interval(bp []float64, x float64) int {
	i := 0
	for i+2 < len(bp) && x >= bp[i+1] {
		i++
	}
	return i
}

// classify rebuilds the per-catch particle index lists in one pass over the
// actives. Positions must be canonical (inside the rank's box).
func (pl *ExchangePlan) classify() {
	a := &pl.d.Active
	for i := range pl.catchIdx {
		pl.catchIdx[i] = pl.catchIdx[i][:0]
	}
	bx, by, bz := pl.bp[0], pl.bp[1], pl.bp[2]
	niy, niz := pl.nIv[1], pl.nIv[2]
	for i := 0; i < a.Len(); i++ {
		ix := interval(bx, float64(a.X[i]))
		iy := interval(by, float64(a.Y[i]))
		iz := interval(bz, float64(a.Z[i]))
		for _, ci := range pl.hits[(ix*niy+iy)*niz+iz] {
			pl.catchIdx[ci] = append(pl.catchIdx[ci], int32(i))
		}
	}
}

// MigrateBegin wraps active positions, classifies departures onto the
// neighbor legs, compacts the stayers, and posts one packed message per leg
// (plus the matching receives). Collective; complete with MigrateEnd.
func (d *Domain) MigrateBegin() {
	pl := d.plan
	if pl.pending != pendNone {
		panic("domain: MigrateBegin with an exchange already in flight")
	}
	pl.pending = pendMigrate
	tag := pl.nextTag()
	a := &d.Active
	n := d.Dec.N
	me := d.Comm.Rank()
	if cap(d.owners) < a.Len() {
		d.owners = make([]int, a.Len())
	}
	owners := d.owners[:a.Len()]
	for li := range pl.legs {
		pl.legs[li].idx = pl.legs[li].idx[:0]
	}
	for i := 0; i < a.Len(); i++ {
		a.X[i] = wrapPos(a.X[i], n[0])
		a.Y[i] = wrapPos(a.Y[i], n[1])
		a.Z[i] = wrapPos(a.Z[i], n[2])
		r := d.Dec.RankOf(float64(a.X[i]), float64(a.Y[i]), float64(a.Z[i]))
		owners[i] = r
		if r == me {
			continue
		}
		li := pl.rankLeg[r]
		if li < 0 {
			panic(fmt.Sprintf(
				"domain: particle %d at (%g,%g,%g) moved to non-neighbor rank %d in one step (> overload+2 = %g cells); raise Overload or shorten the step",
				i, a.X[i], a.Y[i], a.Z[i], r, d.Ov+2))
		}
		pl.legs[li].idx = append(pl.legs[li].idx, int32(i))
	}
	// Pack departures while indices are valid, then compact the stayers.
	var moved int64
	for li := range pl.legs {
		leg := &pl.legs[li]
		leg.packed = a.packParticlesInto(leg.packed[:0], leg.idx, [3]float32{})
		moved += int64(len(leg.idx))
	}
	stay := 0
	for i := 0; i < a.Len(); i++ {
		if owners[i] != me {
			continue
		}
		if i != stay {
			a.Swap(i, stay)
		}
		stay++
	}
	a.Truncate(stay)
	for li := range pl.legs {
		leg := &pl.legs[li]
		mpi.Isend(d.Comm, leg.rank, tag, leg.packed)
		mpi.IrecvInit(d.Comm, leg.rank, tag, &leg.req)
	}
	d.Migrated += moved
}

// MigrateEnd waits for the neighbor legs and unpacks arrivals (in rank
// order, matching the dense path bitwise).
func (d *Domain) MigrateEnd() {
	pl := d.plan
	if pl.pending != pendMigrate {
		panic("domain: MigrateEnd without MigrateBegin")
	}
	for li := range pl.legs {
		d.Active.unpackParticles(mpi.WaitRecv[uint64](&pl.legs[li].req))
	}
	pl.pending = pendNone
}

// RefreshBegin classifies every active against the catch list in a single
// pass, packs per-leg replica messages, and posts the sends and receives.
// Collective; complete with RefreshEnd. Active positions must already be
// canonical (call Migrate first after any position update). The passive set
// keeps its previous (stale) contents until RefreshEnd runs, so analysis
// reading actives may overlap the exchange.
func (d *Domain) RefreshBegin() {
	pl := d.plan
	if pl.pending != pendNone {
		panic("domain: RefreshBegin with an exchange already in flight")
	}
	pl.pending = pendRefresh
	tag := pl.nextTag()
	pl.classify()
	a := &d.Active
	pl.selfPacked = pl.selfPacked[:0]
	for _, ci := range pl.selfCatches {
		pl.selfPacked = a.packParticlesInto(pl.selfPacked, pl.catchIdx[ci], d.catches[ci].shift)
	}
	for li := range pl.legs {
		leg := &pl.legs[li]
		leg.packed = leg.packed[:0]
		for _, ci := range leg.catches {
			leg.packed = a.packParticlesInto(leg.packed, pl.catchIdx[ci], d.catches[ci].shift)
		}
		mpi.Isend(d.Comm, leg.rank, tag, leg.packed)
		mpi.IrecvInit(d.Comm, leg.rank, tag, &leg.req)
	}
}

// RefreshEnd waits for the neighbor legs and rebuilds the passive set:
// remote replicas in rank order, then the rank's own periodic images —
// the same order as the dense path, so the result is bitwise identical.
func (d *Domain) RefreshEnd() {
	pl := d.plan
	if pl.pending != pendRefresh {
		panic("domain: RefreshEnd without RefreshBegin")
	}
	d.Passive.Reset()
	d.origins = d.origins[:0]
	for li := range pl.legs {
		n0 := d.Passive.Len()
		d.Passive.unpackParticles(mpi.WaitRecv[uint64](&pl.legs[li].req))
		d.origins = append(d.origins, Origin{Rank: pl.legs[li].rank, N: d.Passive.Len() - n0})
	}
	n0 := d.Passive.Len()
	d.Passive.unpackParticles(pl.selfPacked)
	d.origins = append(d.origins, Origin{Rank: d.Comm.Rank(), N: d.Passive.Len() - n0})
	pl.pending = pendNone
}
