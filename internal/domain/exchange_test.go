package domain

import (
	"fmt"
	"math/rand"
	"testing"

	"hacc/internal/grid"
	"hacc/internal/mpi"
)

// sameParticles compares two particle stores bitwise (positions, momenta,
// IDs, and ordering).
func sameParticles(t *testing.T, what string, a, b *Particles) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Errorf("%s: length %d vs %d", what, a.Len(), b.Len())
		return
	}
	for i := 0; i < a.Len(); i++ {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] || a.Z[i] != b.Z[i] ||
			a.Vx[i] != b.Vx[i] || a.Vy[i] != b.Vy[i] || a.Vz[i] != b.Vz[i] ||
			a.ID[i] != b.ID[i] {
			t.Errorf("%s: particle %d differs: (%v,%v,%v id=%d) vs (%v,%v,%v id=%d)",
				what, i, a.X[i], a.Y[i], a.Z[i], a.ID[i], b.X[i], b.Y[i], b.Z[i], b.ID[i])
			return
		}
	}
}

// TestPlannedExchangeMatchesDense evolves two identical domains side by
// side — one through the planned neighbor-leg exchange, one through the
// dense all-to-all oracle — under the same random walk, and requires the
// active and passive sets to stay bitwise identical (ordering included)
// across several Migrate+Refresh rounds, including periodic shifts.
func TestPlannedExchangeMatchesDense(t *testing.T) {
	n := [3]int{16, 16, 16}
	for _, p := range []int{1, 2, 4, 8} {
		err := mpi.Run(p, func(c *mpi.Comm) {
			dec := grid.NewDecomp(n, p)
			planned := New(c, dec, 2.5)
			dense := New(c, dec, 2.5)
			scatterLattice(planned, 16, n)
			scatterLattice(dense, 16, n)
			rng := rand.New(rand.NewSource(int64(100*p + c.Rank())))
			for step := 0; step < 3; step++ {
				for i := 0; i < planned.Active.Len(); i++ {
					dx := float32(rng.NormFloat64() * 1.5)
					dy := float32(rng.NormFloat64() * 1.5)
					dz := float32(rng.NormFloat64() * 1.5)
					planned.Active.X[i] += dx
					planned.Active.Y[i] += dy
					planned.Active.Z[i] += dz
					dense.Active.X[i] += dx
					dense.Active.Y[i] += dy
					dense.Active.Z[i] += dz
				}
				planned.Migrate()
				dense.MigrateDense()
				sameParticles(t, fmt.Sprintf("p=%d step=%d active", p, step), &planned.Active, &dense.Active)
				planned.Refresh()
				dense.RefreshDense()
				sameParticles(t, fmt.Sprintf("p=%d step=%d passive", p, step), &planned.Passive, &dense.Passive)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlannedExchangeBeginEndSplit pins that a deferred RefreshEnd (the
// overlap window core uses) produces the same passive set as the immediate
// form, and that the passive set keeps its stale contents inside the window.
func TestPlannedExchangeBeginEndSplit(t *testing.T) {
	n := [3]int{16, 16, 16}
	err := mpi.Run(4, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, 4)
		split := New(c, dec, 2.5)
		whole := New(c, dec, 2.5)
		scatterLattice(split, 16, n)
		scatterLattice(whole, 16, n)
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		for step := 0; step < 2; step++ {
			for i := 0; i < split.Active.Len(); i++ {
				dx := float32(rng.NormFloat64())
				dy := float32(rng.NormFloat64())
				dz := float32(rng.NormFloat64())
				split.Active.X[i] += dx
				split.Active.Y[i] += dy
				split.Active.Z[i] += dz
				whole.Active.X[i] += dx
				whole.Active.Y[i] += dy
				whole.Active.Z[i] += dz
			}
			split.MigrateBegin()
			split.MigrateEnd()
			whole.Migrate()
			stale := split.Passive.Len()
			split.RefreshBegin()
			if split.Passive.Len() != stale {
				t.Errorf("RefreshBegin mutated the passive set (len %d -> %d)", stale, split.Passive.Len())
			}
			split.RefreshEnd()
			whole.Refresh()
			sameParticles(t, fmt.Sprintf("step=%d active", step), &split.Active, &whole.Active)
			sameParticles(t, fmt.Sprintf("step=%d passive", step), &split.Passive, &whole.Passive)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExchangeMessageCountStencil is the message-count regression: on a
// 64-rank world (4×4×4 sub-boxes, wider than the stencil reach) a planned
// Migrate or Refresh sends at most one message per 26-stencil neighbor per
// rank — ≤ 26·P per collective — while the dense oracle posts the full
// P·(P−1) all-to-all twice (floats and IDs). Counted via the mpi world's
// message instrumentation.
func TestExchangeMessageCountStencil(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rank worlds; skipped under -short (race CI)")
	}
	const p = 64
	n := [3]int{32, 32, 32}
	// Run one Migrate+Refresh round per world (plan construction and the
	// particle walk are communication-free) and read the world's total
	// message counter after all ranks have joined — a deterministic count
	// with no in-flight instrumentation races.
	countRound := func(dense bool) (msgs int64, legs int) {
		w := mpi.NewWorld(p)
		err := w.Run(func(c *mpi.Comm) {
			dec := grid.NewDecomp(n, p)
			d := New(c, dec, 2.5)
			scatterLattice(d, 32, n)
			rng := rand.New(rand.NewSource(int64(c.Rank())))
			for i := 0; i < d.Active.Len(); i++ {
				d.Active.X[i] += float32(rng.NormFloat64())
				d.Active.Y[i] += float32(rng.NormFloat64())
				d.Active.Z[i] += float32(rng.NormFloat64())
			}
			if c.Rank() == 0 {
				legs = d.Plan().NumLegs()
			}
			if dense {
				d.MigrateDense()
				d.RefreshDense()
			} else {
				d.Migrate()
				d.Refresh()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.MsgsSent.Load(), legs
	}
	planned, legs := countRound(false)
	dense, _ := countRound(true)
	if legs != 26 {
		t.Errorf("plan legs = %d, want the 26-stencil on a 4x4x4 process grid", legs)
	}
	// One packed message per leg per collective, two collectives per step.
	bound := int64(2 * 26 * p)
	if planned <= 0 || planned > bound {
		t.Errorf("planned Migrate+Refresh sent %d messages, want (0, %d]", planned, bound)
	}
	// Dense: two all-to-alls (floats + IDs) per collective, two collectives.
	denseWant := int64(2 * 2 * p * (p - 1))
	if dense != denseWant {
		t.Errorf("dense Migrate+Refresh sent %d messages, want %d", dense, denseWant)
	}
	if planned*2 >= dense {
		t.Errorf("planned exchange (%d msgs) not well below dense (%d)", planned, dense)
	}
}

// TestExchangeWarmAllocs pins the steady-state allocation count of the
// planned exchange at zero: after one warm-up round, Migrate+Refresh touch
// only plan-owned buffers. Measured on one rank, where no mpi messages
// model the network (multi-rank runs add only the runtime's per-message
// copies, as with the spectral plans).
func TestExchangeWarmAllocs(t *testing.T) {
	n := [3]int{16, 16, 16}
	err := mpi.Run(1, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, 1)
		d := New(c, dec, 2.5)
		scatterLattice(d, 16, n)
		d.Migrate()
		d.Refresh()
		allocs := testing.AllocsPerRun(10, func() {
			d.Migrate()
			d.Refresh()
		})
		if allocs != 0 {
			t.Errorf("warm Migrate+Refresh allocate %.1f allocs/op, want 0", allocs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMigrateStrayPanics: a particle teleported beyond the neighbor stencil
// must be reported loudly rather than silently lost.
func TestMigrateStrayPanics(t *testing.T) {
	const p = 64
	n := [3]int{64, 64, 64}
	err := mpi.Run(p, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, p)
		d := New(c, dec, 2)
		if c.Rank() == 0 {
			// Rank 0 owns a corner box; a particle at the far corner is
			// beyond any neighbor's reach on a 4x4x4 grid of 16-cell boxes.
			d.Active.Append(40, 40, 40, 0, 0, 0, 1)
		}
		d.Migrate()
	})
	if err == nil {
		t.Fatal("expected a panic-derived error for a stray particle")
	}
}
