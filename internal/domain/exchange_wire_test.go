package domain

// Byte/message accounting for the planned exchange over a real socket
// transport (ISSUE 9): the 26-stencil property must survive the wire — one
// framed message per leg per collective, so a Migrate+Refresh round costs at
// most 2·26 messages per rank (≤ 26·P per collective globally), with the
// frame overhead an exact, derived quantity rather than an estimate.

import (
	"testing"
	"time"

	"hacc/internal/grid"
	"hacc/internal/mpi"
)

func TestWireExchangeMessageBudget(t *testing.T) {
	const ranks = 4
	n := [3]int{16, 16, 16}
	err := mpi.RunWire(ranks, mpi.WireOptions{Transport: "tcp", Timeout: 60 * time.Second},
		func(c *mpi.Comm) {
			dec := grid.NewDecomp(n, ranks)
			d := New(c, dec, 2.5)
			scatterLattice(d, 16, n)
			// Warm round so the measured one is the steady-state path.
			d.Migrate()
			d.Refresh()
			mpi.Barrier(c)
			before := c.Stats()
			d.Migrate()
			d.Refresh()
			st := c.Stats()

			legs := d.Plan().NumLegs()
			if legs > 26 {
				t.Errorf("rank %d: %d neighbor legs exceed the 26-stencil", c.Rank(), legs)
			}
			msgs := st.Msgs - before.Msgs
			wire := st.WireMsgs - before.WireMsgs
			bytes := st.WireBytes - before.WireBytes
			// One packed message per leg per collective, two collectives.
			if want := int64(2 * legs); msgs != want {
				t.Errorf("rank %d: Migrate+Refresh sent %d messages, want exactly %d (2 collectives × %d legs)",
					c.Rank(), msgs, want, legs)
			}
			// Every rank lives in its own world here: every message crosses a
			// socket, so the wire counters must match the logical ones.
			if wire != msgs {
				t.Errorf("rank %d: %d of %d messages crossed the wire", c.Rank(), wire, msgs)
			}
			if bytes <= 0 {
				t.Errorf("rank %d: no wire payload counted for the exchange", c.Rank())
			}
			// Frame overhead is derived, not sampled: exactly one fixed-size
			// header per wire message. Pin the ratio so the framing cost of
			// the exchange stays a rounding error next to the payload.
			overhead := wire * mpi.FrameHeaderSize
			if overhead >= bytes {
				t.Errorf("rank %d: framing overhead %dB exceeds payload %dB — messages too fine-grained",
					c.Rank(), overhead, bytes)
			}
			t.Logf("rank %d: %d legs, %d msgs, %dB payload + %dB framing (%.2f%%)",
				c.Rank(), legs, msgs, bytes, overhead, 100*float64(overhead)/float64(bytes))
		})
	if err != nil {
		t.Fatal(err)
	}
}
