package domain

import "math"

// Particles is structure-of-arrays particle storage: three position arrays,
// three velocity (momentum) arrays, and an identifier array. Positions are
// in global grid units; momenta are p = a²ẋ in grid units per 1/H0 (see
// DESIGN.md). Single precision throughout, per HACC's mixed-precision
// design: only the spectral solver runs in double.
type Particles struct {
	X, Y, Z    []float32
	Vx, Vy, Vz []float32
	ID         []uint64
}

// Len returns the number of particles.
func (p *Particles) Len() int { return len(p.X) }

// Reset empties the store, keeping capacity.
func (p *Particles) Reset() {
	p.X = p.X[:0]
	p.Y = p.Y[:0]
	p.Z = p.Z[:0]
	p.Vx = p.Vx[:0]
	p.Vy = p.Vy[:0]
	p.Vz = p.Vz[:0]
	p.ID = p.ID[:0]
}

// Append adds one particle.
func (p *Particles) Append(x, y, z, vx, vy, vz float32, id uint64) {
	p.X = append(p.X, x)
	p.Y = append(p.Y, y)
	p.Z = append(p.Z, z)
	p.Vx = append(p.Vx, vx)
	p.Vy = append(p.Vy, vy)
	p.Vz = append(p.Vz, vz)
	p.ID = append(p.ID, id)
}

// AppendFrom copies particle i of src.
func (p *Particles) AppendFrom(src *Particles, i int) {
	p.Append(src.X[i], src.Y[i], src.Z[i], src.Vx[i], src.Vy[i], src.Vz[i], src.ID[i])
}

// Swap exchanges particles i and j.
func (p *Particles) Swap(i, j int) {
	p.X[i], p.X[j] = p.X[j], p.X[i]
	p.Y[i], p.Y[j] = p.Y[j], p.Y[i]
	p.Z[i], p.Z[j] = p.Z[j], p.Z[i]
	p.Vx[i], p.Vx[j] = p.Vx[j], p.Vx[i]
	p.Vy[i], p.Vy[j] = p.Vy[j], p.Vy[i]
	p.Vz[i], p.Vz[j] = p.Vz[j], p.Vz[i]
	p.ID[i], p.ID[j] = p.ID[j], p.ID[i]
}

// Truncate shortens the store to n particles.
func (p *Particles) Truncate(n int) {
	p.X = p.X[:n]
	p.Y = p.Y[:n]
	p.Z = p.Z[:n]
	p.Vx = p.Vx[:n]
	p.Vy = p.Vy[:n]
	p.Vz = p.Vz[:n]
	p.ID = p.ID[:n]
}

// Grow ensures capacity for at least n more particles.
func (p *Particles) Grow(n int) {
	need := len(p.X) + n
	if cap(p.X) >= need {
		return
	}
	grow := func(s []float32) []float32 {
		ns := make([]float32, len(s), need)
		copy(ns, s)
		return ns
	}
	p.X = grow(p.X)
	p.Y = grow(p.Y)
	p.Z = grow(p.Z)
	p.Vx = grow(p.Vx)
	p.Vy = grow(p.Vy)
	p.Vz = grow(p.Vz)
	ids := make([]uint64, len(p.ID), need)
	copy(ids, p.ID)
	p.ID = ids
}

// packFloatsInto appends the selected particles' positions+velocities onto
// dst as a flat float32 buffer of stride 6 (used by migration and refresh
// messages) and returns the extended slice; callers reuse dst's capacity
// across steps.
func (p *Particles) packFloatsInto(dst []float32, idx []int, shift [3]float32) []float32 {
	for _, i := range idx {
		dst = append(dst, p.X[i]+shift[0], p.Y[i]+shift[1], p.Z[i]+shift[2],
			p.Vx[i], p.Vy[i], p.Vz[i])
	}
	return dst
}

// packIDsInto appends the selected particles' IDs onto dst.
func (p *Particles) packIDsInto(dst []uint64, idx []int) []uint64 {
	for _, i := range idx {
		dst = append(dst, p.ID[i])
	}
	return dst
}

// unpack appends particles from paired float/id buffers.
func (p *Particles) unpack(fl []float32, ids []uint64) {
	for i, id := range ids {
		b := fl[6*i:]
		p.Append(b[0], b[1], b[2], b[3], b[4], b[5], id)
	}
}

// packedStride is the wire size of one particle in packed uint64 records:
// three words of bit-cast float32 pairs (x|y, z|vx, vy|vz) plus the ID.
// Packing one message per exchange leg (instead of separate float and ID
// messages) halves the planned exchange's message count; the bit cast is
// lossless, so packed transfers are bitwise identical to the float path.
const packedStride = 4

// packParticlesInto appends the selected particles onto dst in packed wire
// format, shifting positions by shift (same float32 additions as
// packFloatsInto), and returns the extended slice. Callers reuse dst's
// capacity across steps.
func (p *Particles) packParticlesInto(dst []uint64, idx []int32, shift [3]float32) []uint64 {
	for _, i := range idx {
		x := math.Float32bits(p.X[i] + shift[0])
		y := math.Float32bits(p.Y[i] + shift[1])
		z := math.Float32bits(p.Z[i] + shift[2])
		vx := math.Float32bits(p.Vx[i])
		vy := math.Float32bits(p.Vy[i])
		vz := math.Float32bits(p.Vz[i])
		dst = append(dst,
			uint64(x)|uint64(y)<<32,
			uint64(z)|uint64(vx)<<32,
			uint64(vy)|uint64(vz)<<32,
			p.ID[i])
	}
	return dst
}

// unpackParticles appends particles from a packed wire buffer.
func (p *Particles) unpackParticles(buf []uint64) {
	for k := 0; k+packedStride <= len(buf); k += packedStride {
		p.Append(
			math.Float32frombits(uint32(buf[k])),
			math.Float32frombits(uint32(buf[k]>>32)),
			math.Float32frombits(uint32(buf[k+1])),
			math.Float32frombits(uint32(buf[k+1]>>32)),
			math.Float32frombits(uint32(buf[k+2])),
			math.Float32frombits(uint32(buf[k+2]>>32)),
			buf[k+3])
	}
}
