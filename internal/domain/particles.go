// Package domain implements HACC's particle domain organization: a
// structure-of-arrays particle store (paper §III), the regular 3-D block
// decomposition, particle migration, and the particle-overloading scheme of
// Fig. 4 — full replication of neighbor particles within a boundary shell,
// so the short-range solvers run entirely rank-local and the long-range
// solver needs no per-step particle communication.
package domain

// Particles is structure-of-arrays particle storage: three position arrays,
// three velocity (momentum) arrays, and an identifier array. Positions are
// in global grid units; momenta are p = a²ẋ in grid units per 1/H0 (see
// DESIGN.md). Single precision throughout, per HACC's mixed-precision
// design: only the spectral solver runs in double.
type Particles struct {
	X, Y, Z    []float32
	Vx, Vy, Vz []float32
	ID         []uint64
}

// Len returns the number of particles.
func (p *Particles) Len() int { return len(p.X) }

// Reset empties the store, keeping capacity.
func (p *Particles) Reset() {
	p.X = p.X[:0]
	p.Y = p.Y[:0]
	p.Z = p.Z[:0]
	p.Vx = p.Vx[:0]
	p.Vy = p.Vy[:0]
	p.Vz = p.Vz[:0]
	p.ID = p.ID[:0]
}

// Append adds one particle.
func (p *Particles) Append(x, y, z, vx, vy, vz float32, id uint64) {
	p.X = append(p.X, x)
	p.Y = append(p.Y, y)
	p.Z = append(p.Z, z)
	p.Vx = append(p.Vx, vx)
	p.Vy = append(p.Vy, vy)
	p.Vz = append(p.Vz, vz)
	p.ID = append(p.ID, id)
}

// AppendFrom copies particle i of src.
func (p *Particles) AppendFrom(src *Particles, i int) {
	p.Append(src.X[i], src.Y[i], src.Z[i], src.Vx[i], src.Vy[i], src.Vz[i], src.ID[i])
}

// Swap exchanges particles i and j.
func (p *Particles) Swap(i, j int) {
	p.X[i], p.X[j] = p.X[j], p.X[i]
	p.Y[i], p.Y[j] = p.Y[j], p.Y[i]
	p.Z[i], p.Z[j] = p.Z[j], p.Z[i]
	p.Vx[i], p.Vx[j] = p.Vx[j], p.Vx[i]
	p.Vy[i], p.Vy[j] = p.Vy[j], p.Vy[i]
	p.Vz[i], p.Vz[j] = p.Vz[j], p.Vz[i]
	p.ID[i], p.ID[j] = p.ID[j], p.ID[i]
}

// Truncate shortens the store to n particles.
func (p *Particles) Truncate(n int) {
	p.X = p.X[:n]
	p.Y = p.Y[:n]
	p.Z = p.Z[:n]
	p.Vx = p.Vx[:n]
	p.Vy = p.Vy[:n]
	p.Vz = p.Vz[:n]
	p.ID = p.ID[:n]
}

// Grow ensures capacity for at least n more particles.
func (p *Particles) Grow(n int) {
	need := len(p.X) + n
	if cap(p.X) >= need {
		return
	}
	grow := func(s []float32) []float32 {
		ns := make([]float32, len(s), need)
		copy(ns, s)
		return ns
	}
	p.X = grow(p.X)
	p.Y = grow(p.Y)
	p.Z = grow(p.Z)
	p.Vx = grow(p.Vx)
	p.Vy = grow(p.Vy)
	p.Vz = grow(p.Vz)
	ids := make([]uint64, len(p.ID), need)
	copy(ids, p.ID)
	p.ID = ids
}

// packFloatsInto appends the selected particles' positions+velocities onto
// dst as a flat float32 buffer of stride 6 (used by migration and refresh
// messages) and returns the extended slice; callers reuse dst's capacity
// across steps.
func (p *Particles) packFloatsInto(dst []float32, idx []int, shift [3]float32) []float32 {
	for _, i := range idx {
		dst = append(dst, p.X[i]+shift[0], p.Y[i]+shift[1], p.Z[i]+shift[2],
			p.Vx[i], p.Vy[i], p.Vz[i])
	}
	return dst
}

// packIDsInto appends the selected particles' IDs onto dst.
func (p *Particles) packIDsInto(dst []uint64, idx []int) []uint64 {
	for _, i := range idx {
		dst = append(dst, p.ID[i])
	}
	return dst
}

// unpack appends particles from paired float/id buffers.
func (p *Particles) unpack(fl []float32, ids []uint64) {
	for i, id := range ids {
		b := fl[6*i:]
		p.Append(b[0], b[1], b[2], b[3], b[4], b[5], id)
	}
}
