// Package domain implements HACC's particle domain organization: a
// structure-of-arrays particle store (paper §III), the regular 3-D block
// decomposition, particle migration, and the particle-overloading scheme of
// Fig. 4 — full replication of neighbor particles within a boundary shell,
// so the short-range solvers run entirely rank-local and the long-range
// solver needs no per-step particle communication.
//
// The communication path is a persistent ExchangePlan (PR 3), built once in
// New from the catch geometry: Migrate and Refresh send one packed message
// per 26-stencil neighbor leg and split into Begin/End halves so core can
// hide the exchange behind computation; the dense all-to-all paths survive
// as equivalence oracles (MigrateDense, RefreshDense). RefreshOrigins
// records the owner of every passive replica segment, which is what lets
// the analysis layer stitch cross-rank halos without re-deriving ownership
// (PR 4), and SetOrigins installs those segments back from a checkpoint's
// replica container (PR 5). Positions are global grid cells; momenta are
// p = a²ẋ in grid
// units per 1/H0 (see DESIGN.md); single precision throughout, per HACC's
// mixed-precision design.
package domain
