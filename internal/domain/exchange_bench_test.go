package domain

import (
	"math/rand"
	"testing"

	"hacc/internal/grid"
	"hacc/internal/mpi"
)

// benchExchange measures one warm Migrate+Refresh round per iteration and
// reports messages/op alongside allocs/op (the planned path's message count
// is the stencil-neighbor column of the DESIGN.md table; the dense oracle
// shows the O(P²) baseline).
func benchExchange(b *testing.B, ranks int, dense bool) {
	n := [3]int{16, 16, 16}
	w := mpi.NewWorld(ranks)
	b.ReportAllocs()
	var msgs int64
	err := w.Run(func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, ranks)
		d := New(c, dec, 2.5)
		scatterLattice(d, 16, n)
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		jiggle := func() {
			for i := 0; i < d.Active.Len(); i++ {
				d.Active.X[i] += float32(rng.NormFloat64() * 0.3)
				d.Active.Y[i] += float32(rng.NormFloat64() * 0.3)
				d.Active.Z[i] += float32(rng.NormFloat64() * 0.3)
			}
		}
		round := func() {
			if dense {
				d.MigrateDense()
				d.RefreshDense()
			} else {
				d.Migrate()
				d.Refresh()
			}
		}
		// Warm the plan-owned buffers before the timed loop.
		jiggle()
		round()
		mpi.Barrier(c)
		if c.Rank() == 0 {
			b.ResetTimer()
			msgs = -w.MsgsSent.Load()
		}
		for i := 0; i < b.N; i++ {
			jiggle()
			round()
		}
		mpi.Barrier(c)
		if c.Rank() == 0 {
			msgs += w.MsgsSent.Load()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	// Subtract the closing barrier's traffic (the opening one lands before
	// the counter snapshot) and normalize; the residual straggler error is
	// a few messages per run, amortized over b.N.
	logp := 0
	for q := 1; q < ranks; q *= 2 {
		logp++
	}
	msgs -= int64(ranks * logp)
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
}

// benchExchangeWire measures the same warm Migrate+Refresh round with the
// ranks connected through real sockets (loopback wire transport): the
// message column must stay at the stencil count — the wire changes framing
// and copies, never the communication pattern — and the extra columns report
// what the sockets actually carried.
func benchExchangeWire(b *testing.B, ranks int, transport string) {
	n := [3]int{16, 16, 16}
	b.ReportAllocs()
	var msgs, wireBytes int64
	err := mpi.RunWire(ranks, mpi.WireOptions{Transport: transport}, func(c *mpi.Comm) {
		dec := grid.NewDecomp(n, ranks)
		d := New(c, dec, 2.5)
		scatterLattice(d, 16, n)
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		jiggle := func() {
			for i := 0; i < d.Active.Len(); i++ {
				d.Active.X[i] += float32(rng.NormFloat64() * 0.3)
				d.Active.Y[i] += float32(rng.NormFloat64() * 0.3)
				d.Active.Z[i] += float32(rng.NormFloat64() * 0.3)
			}
		}
		jiggle()
		d.Migrate()
		d.Refresh()
		mpi.Barrier(c)
		start := c.Stats()
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			jiggle()
			d.Migrate()
			d.Refresh()
		}
		mpi.Barrier(c)
		end := c.Stats()
		// Per-rank deltas fold into global totals collectively — the stats
		// are per-process in a wire world, never shared memory.
		tot := mpi.AllReduce(c, []int64{end.WireMsgs - start.WireMsgs, end.WireBytes - start.WireBytes}, mpi.SumI64)
		if c.Rank() == 0 {
			msgs, wireBytes = tot[0], tot[1]
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	// Subtract the closing barrier (as in benchExchange).
	logp := 0
	for q := 1; q < ranks; q *= 2 {
		logp++
	}
	msgs -= int64(ranks * logp)
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
	b.ReportMetric(float64(wireBytes)/float64(b.N), "wireB/op")
	b.ReportMetric(float64(msgs*mpi.FrameHeaderSize)/float64(b.N), "frameB/op")
}

// BenchmarkMigrateRefresh pins the warm planned exchange: on one rank it
// must report 0 allocs/op (all state plan-owned; multi-rank runs add only
// the mpi runtime's per-message copies, which model the network), and the
// planned message column must sit at the stencil count while the dense
// oracle scales O(P²). The wire rows run the identical exchange over real
// loopback sockets: same msgs/op, plus honest byte and framing columns.
func BenchmarkMigrateRefresh(b *testing.B) {
	b.Run("planned/ranks1", func(b *testing.B) { benchExchange(b, 1, false) })
	b.Run("planned/ranks4", func(b *testing.B) { benchExchange(b, 4, false) })
	b.Run("planned/ranks8", func(b *testing.B) { benchExchange(b, 8, false) })
	b.Run("dense/ranks4", func(b *testing.B) { benchExchange(b, 4, true) })
	b.Run("dense/ranks8", func(b *testing.B) { benchExchange(b, 8, true) })
	b.Run("wire-tcp/ranks4", func(b *testing.B) { benchExchangeWire(b, 4, "tcp") })
	b.Run("wire-unix/ranks4", func(b *testing.B) { benchExchangeWire(b, 4, "unix") })
}
