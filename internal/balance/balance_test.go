package balance

import (
	"math"
	"testing"

	"hacc/internal/mpi"
)

func TestCostModelEWMA(t *testing.T) {
	mpi.Run(4, func(c *mpi.Comm) {
		m := NewCostModel(0.5, c.Size())
		// First update seeds the average directly.
		m.Update(c, float64(c.Rank()+1))
		for r, v := range m.Costs() {
			if v != float64(r+1) {
				t.Errorf("after warmup rank %d cost %g, want %d", r, v, r+1)
			}
		}
		// Second update moves halfway toward the new vector.
		m.Update(c, float64(2*(c.Rank()+1)))
		for r, v := range m.Costs() {
			want := float64(r+1) + 0.5*float64(r+1)
			if math.Abs(v-want) > 1e-12 {
				t.Errorf("after EWMA rank %d cost %g, want %g", r, v, want)
			}
		}
		// max/mean of (1.5,3,4.5,6) = 6/3.75.
		if got, want := m.Imbalance(), 6.0/3.75; math.Abs(got-want) > 1e-12 {
			t.Errorf("imbalance %g, want %g", got, want)
		}
		m.Reset()
		if m.Warm() || m.Imbalance() != 1 {
			t.Error("reset model should be cold with imbalance 1")
		}
	})
}

func TestCostModelUniformImbalance(t *testing.T) {
	mpi.Run(3, func(c *mpi.Comm) {
		m := NewCostModel(1, c.Size())
		m.Update(c, 7)
		if got := m.Imbalance(); got != 1 {
			t.Errorf("uniform cost imbalance %g, want 1", got)
		}
	})
}

func TestEqualCostCutsUniform(t *testing.T) {
	hist := make([]float64, 32)
	for i := range hist {
		hist[i] = 1
	}
	cuts := EqualCostCuts(hist, 4, 2)
	want := []int{0, 8, 16, 24, 32}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("uniform cuts %v, want %v", cuts, want)
		}
	}
	// Zero cost falls back to near-uniform chunks.
	zero := EqualCostCuts(make([]float64, 30), 4, 2)
	if zero[0] != 0 || zero[4] != 30 {
		t.Fatalf("zero-cost cuts %v must span [0,30]", zero)
	}
	for j := 0; j < 4; j++ {
		if zero[j+1]-zero[j] < 2 {
			t.Fatalf("zero-cost cuts %v violate min width", zero)
		}
	}
}

func TestEqualCostCutsSkewed(t *testing.T) {
	// All the cost in cells [0,4): the first interval should shrink to the
	// minimum width and the skew should split at the cost boundary.
	hist := make([]float64, 32)
	for i := 0; i < 4; i++ {
		hist[i] = 100
	}
	cuts := EqualCostCuts(hist, 2, 3)
	if len(cuts) != 3 || cuts[0] != 0 || cuts[2] != 32 {
		t.Fatalf("cuts %v malformed", cuts)
	}
	if cuts[1] < 1 || cuts[1] > 4 {
		t.Fatalf("cut %v did not move toward the hot cells", cuts)
	}
	if cuts[1] < 3 {
		t.Fatalf("cuts %v violate min width 3", cuts)
	}

	// Equal-cost property on a smooth ramp: each interval's cost within a
	// cell of ideal.
	ramp := make([]float64, 64)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	cuts = EqualCostCuts(ramp, 4, 2)
	var tot float64
	for _, v := range ramp {
		tot += v
	}
	for j := 0; j < 4; j++ {
		var s float64
		for i := cuts[j]; i < cuts[j+1]; i++ {
			s += ramp[i]
		}
		if s < tot/4-64 || s > tot/4+64 {
			t.Fatalf("interval %d of %v holds cost %g, ideal %g", j, cuts, s, tot/4)
		}
	}
}

func TestEqualCostCutsMinWidthSqueeze(t *testing.T) {
	// Cost piled at the far end: earlier cuts must still leave minWidth
	// room for every interval.
	hist := make([]float64, 16)
	hist[15] = 1
	cuts := EqualCostCuts(hist, 4, 4)
	want := []int{0, 4, 8, 12, 16}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("squeezed cuts %v, want %v", cuts, want)
		}
	}
	// Unsatisfiable constraints refuse rather than produce invalid cuts.
	if got := EqualCostCuts(hist, 5, 4); got != nil {
		t.Fatalf("infeasible partition returned %v, want nil", got)
	}
}

func TestBalancerTrigger(t *testing.T) {
	mpi.Run(2, func(c *mpi.Comm) {
		b := New(Options{Alpha: 1, Threshold: 1.5, MinSteps: 3}, c.Size())
		if b.ShouldRebalance(0) {
			t.Error("cold balancer must not fire")
		}
		// Balanced step: no trigger.
		b.Observe(c, 10)
		if b.ShouldRebalance(1) {
			t.Error("balanced cost fired")
		}
		// Rank 0 is 3× rank 1: max/mean = 1.5 is not > threshold... use 4×.
		cost := 10.0
		if c.Rank() == 0 {
			cost = 40
		}
		b.Observe(c, cost)
		if got := b.Imbalance(); math.Abs(got-40/25.0) > 1e-12 {
			t.Errorf("imbalance %g, want 1.6", got)
		}
		if !b.ShouldRebalance(2) {
			t.Fatal("imbalance 1.6 > 1.5 must fire")
		}
		b.Fired(2)
		// Immediately after firing: model reset and MinSteps guard both hold.
		b.Observe(c, cost)
		if b.ShouldRebalance(3) || b.ShouldRebalance(4) {
			t.Error("fired within MinSteps of the last rebalance")
		}
		if !b.ShouldRebalance(5) {
			t.Error("persistent imbalance must re-fire after MinSteps")
		}
	})
}

func TestBalancerValidation(t *testing.T) {
	for _, bad := range []Options{{Threshold: 0}, {Threshold: 1}, {Threshold: 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("threshold %g: expected panic", bad.Threshold)
				}
			}()
			New(bad, 4)
		}()
	}
}
