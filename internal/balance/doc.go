// Package balance is the closed-loop load balancer for the late-time
// clustered universe (ROADMAP item 2; arXiv:1410.2805 §short-range,
// arXiv:1411.3396). Gravitational clustering makes per-rank short-range
// cost diverge by orders of magnitude at low redshift, so a fixed uniform
// decomposition leaves most ranks idle waiting on the densest one.
//
// The package has three pieces, all deterministic so that every rank takes
// the same decision from the same collective data:
//
//   - CostModel: per-rank step costs (kernel interactions + walk node
//     visits — counted work, not wall-clock, so decisions are reproducible)
//     AllGathered each step and smoothed with an EWMA, giving a live
//     max/mean imbalance estimate that one noisy step cannot whipsaw.
//
//   - EqualCostCuts: an equal-cost prefix partition of a per-cell cost
//     histogram along one axis, with a minimum interval width so the
//     overload shell and ghost exchange stay valid. Feeding it the
//     AllReduce-summed histograms of the current particle costs yields new
//     slab boundaries for grid.NewDecompCuts.
//
//   - Balancer: the trigger policy — fire when the smoothed imbalance
//     crosses a threshold, but not within MinSteps of the previous
//     rebalance, and restart the cost average afterwards so the old
//     geometry's imbalance cannot immediately re-trigger (hysteresis).
//
// The mechanics of a rebalance live in core: build a new Decomp/Domain for
// the cut geometry, MigrateDense the particles (arbitrary-distance moves),
// rebuild the built-once-per-geometry exchange plans, continue. The uniform
// decomposition remains the bitwise oracle: with the balancer disabled the
// step loop is unchanged, and a rebalance itself is lossless on global
// ID-sorted particle state.
package balance
