package balance

import (
	"hacc/internal/mpi"
)

// CostModel tracks EWMA-smoothed per-rank step costs. Update is collective:
// every rank contributes its own cost and receives everyone's, so the model
// state — and any decision derived from it — is identical on all ranks.
type CostModel struct {
	alpha float64
	ewma  []float64
	warm  bool
}

// NewCostModel creates a model for `ranks` ranks with EWMA coefficient
// alpha in (0,1]: the weight of the newest step (1 = no smoothing).
func NewCostModel(alpha float64, ranks int) *CostModel {
	if alpha <= 0 || alpha > 1 {
		panic("balance: EWMA alpha must be in (0,1]")
	}
	return &CostModel{alpha: alpha, ewma: make([]float64, ranks)}
}

// Update AllGathers each rank's cost for the step just finished and folds
// the vector into the running average. Collective.
func (m *CostModel) Update(c *mpi.Comm, myCost float64) {
	all := mpi.AllGather(c, []float64{myCost})
	if !m.warm {
		copy(m.ewma, all)
		m.warm = true
		return
	}
	for r := range m.ewma {
		m.ewma[r] += m.alpha * (all[r] - m.ewma[r])
	}
}

// Reset forgets the accumulated average; the next Update starts fresh.
// Called after a rebalance so the old geometry's imbalance does not bleed
// into decisions about the new one.
func (m *CostModel) Reset() {
	m.warm = false
	for r := range m.ewma {
		m.ewma[r] = 0
	}
}

// Costs returns the smoothed per-rank cost vector (read-only).
func (m *CostModel) Costs() []float64 { return m.ewma }

// Warm reports whether at least one Update has been folded in.
func (m *CostModel) Warm() bool { return m.warm }

// Imbalance returns the max/mean ratio of the smoothed costs: 1 is perfect
// balance. A cold or zero-cost model reports 1 (nothing to balance).
func (m *CostModel) Imbalance() float64 {
	if !m.warm || len(m.ewma) == 0 {
		return 1
	}
	var max, sum float64
	for _, v := range m.ewma {
		if v > max {
			max = v
		}
		sum += v
	}
	if sum <= 0 {
		return 1
	}
	return max / (sum / float64(len(m.ewma)))
}

// EqualCostCuts partitions [0,n) grid cells into `parts` intervals of
// near-equal cost given a per-cell cost histogram: cut j is placed at the
// smallest prefix holding j/parts of the total cost, then clamped so every
// interval keeps at least minWidth cells (the overload shell plus deposit
// ghost must fit inside a slab). A zero-cost histogram yields near-uniform
// cuts. Returns nil when the constraints are unsatisfiable
// (parts*minWidth > n). The result is a valid cut array for
// grid.NewDecompCuts: parts+1 ascending values from 0 to n.
func EqualCostCuts(hist []float64, parts, minWidth int) []int {
	n := len(hist)
	if minWidth < 1 {
		minWidth = 1
	}
	if parts < 1 || parts*minWidth > n {
		return nil
	}
	prefix := make([]float64, n+1)
	for i, v := range hist {
		if v < 0 {
			v = 0
		}
		prefix[i+1] = prefix[i] + v
	}
	total := prefix[n]
	cuts := make([]int, parts+1)
	cuts[parts] = n
	for j := 1; j < parts; j++ {
		var c int
		if total > 0 {
			want := total * float64(j) / float64(parts)
			// Smallest c with prefix[c] >= want.
			lo, hi := 0, n
			for lo < hi {
				mid := (lo + hi) / 2
				if prefix[mid] < want {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			c = lo
		} else {
			c = j * n / parts
		}
		// Width clamps: at least minWidth cells after the previous cut and
		// enough room for the remaining parts.
		if min := cuts[j-1] + minWidth; c < min {
			c = min
		}
		if max := n - (parts-j)*minWidth; c > max {
			c = max
		}
		cuts[j] = c
	}
	return cuts
}

// Options configures the trigger policy.
type Options struct {
	// Alpha is the EWMA coefficient for the cost model (default 0.5).
	Alpha float64
	// Threshold is the smoothed max/mean imbalance above which a rebalance
	// is requested; values ≤ 1 would fire permanently and are rejected.
	Threshold float64
	// MinSteps is the minimum number of steps between rebalances (≥ 1).
	MinSteps int
}

// Balancer combines the cost model with the trigger policy. All methods
// must be called identically on every rank (Observe is collective); the
// decision sequence is then identical everywhere by construction.
type Balancer struct {
	opts     Options
	model    *CostModel
	lastFire int
	fired    bool
}

// New creates a balancer for `ranks` ranks.
func New(opts Options, ranks int) *Balancer {
	if opts.Alpha == 0 {
		opts.Alpha = 0.5
	}
	if opts.Threshold <= 1 {
		panic("balance: threshold must exceed 1")
	}
	if opts.MinSteps < 1 {
		opts.MinSteps = 1
	}
	return &Balancer{opts: opts, model: NewCostModel(opts.Alpha, ranks)}
}

// Observe folds the cost of the step that just ran into the model.
// Collective.
func (b *Balancer) Observe(c *mpi.Comm, myCost float64) {
	b.model.Update(c, myCost)
}

// Imbalance returns the current smoothed max/mean cost ratio.
func (b *Balancer) Imbalance() float64 { return b.model.Imbalance() }

// Costs exposes the smoothed per-rank cost vector (read-only), the input
// for apportioning per-particle weights into the cut histograms.
func (b *Balancer) Costs() []float64 { return b.model.Costs() }

// ShouldRebalance reports whether a rebalance is due at the given step:
// the smoothed imbalance exceeds the threshold and at least MinSteps have
// elapsed since the last fire.
func (b *Balancer) ShouldRebalance(step int) bool {
	if !b.model.Warm() {
		return false
	}
	if b.fired && step-b.lastFire < b.opts.MinSteps {
		return false
	}
	return b.model.Imbalance() > b.opts.Threshold
}

// Fired records that a rebalance happened at `step` and resets the cost
// average, so the next decision is based purely on the new geometry.
func (b *Balancer) Fired(step int) {
	b.lastFire = step
	b.fired = true
	b.model.Reset()
}
