package pfft

import (
	"math/cmplx"
	"testing"

	"hacc/internal/fft"
	"hacc/internal/mpi"
)

// redistributeReference is the pre-plan implementation (a personalized
// all-to-all that exchanged zero-length messages for empty intersections and
// round-tripped the self overlap through the mailbox), kept verbatim as the
// bitwise oracle for the Redistributor plan.
func redistributeReference[T any](c *mpi.Comm, src []T, from, to *Layout) []T {
	p := c.Size()
	me := c.Rank()
	mine := from.Boxes[me]
	sendParts := make([][]T, p)
	for r := 0; r < p; r++ {
		itc := Intersect(mine, to.Boxes[r])
		if itc.Empty() {
			continue
		}
		buf := make([]T, itc.Count())
		forEach(itc, from.Order, func(g [3]int, k int) {
			buf[k] = src[from.LocalIndex(me, g)]
		})
		sendParts[r] = buf
	}
	recv := mpi.AllToAll(c, sendParts)
	dstBox := to.Boxes[me]
	dst := make([]T, dstBox.Count())
	for r := 0; r < p; r++ {
		itc := Intersect(from.Boxes[r], dstBox)
		if itc.Empty() {
			continue
		}
		buf := recv[r]
		forEach(itc, from.Order, func(g [3]int, k int) {
			dst[to.LocalIndex(me, g)] = buf[k]
		})
	}
	return dst
}

// TestRedistributorMatchesLegacy pins the planned redistribution bitwise
// against the all-to-all reference, over non-power-of-two grids, a
// single-rank world, slab (p2=1) layouts, and layouts with empty
// intersections; plan reuse across repeated Runs must be stable.
func TestRedistributorMatchesLegacy(t *testing.T) {
	cases := []struct {
		name     string
		n        [3]int
		procs    int
		from, to func(n [3]int, p int) *Layout
	}{
		{"block-to-pencil", [3]int{12, 10, 9}, 4,
			func(n [3]int, p int) *Layout { return Block3D(n, [3]int{2, 2, 1}) },
			func(n [3]int, p int) *Layout { return PencilZ(n, 2, 2) }},
		{"single-rank", [3]int{7, 5, 6}, 1,
			func(n [3]int, p int) *Layout { return Block3D(n, [3]int{1, 1, 1}) },
			func(n [3]int, p int) *Layout { return PencilX(n, 1, 1) }},
		{"slab", [3]int{8, 12, 10}, 4,
			func(n [3]int, p int) *Layout { return PencilX(n, p, 1) },
			func(n [3]int, p int) *Layout { return PencilY(n, p, 1) }},
		{"sparse-overlap", [3]int{11, 13, 8}, 6,
			func(n [3]int, p int) *Layout { return PencilX(n, 3, 2) },
			func(n [3]int, p int) *Layout { return PencilZ(n, 3, 2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			full := randomGlobal(tc.n, 31)
			from := tc.from(tc.n, tc.procs)
			to := tc.to(tc.n, tc.procs)
			err := mpi.Run(tc.procs, func(c *mpi.Comm) {
				local := scatterGlobal(c.Rank(), full, from)
				want := redistributeReference(c, local, from, to)
				rd := NewRedistributor[complex128](c, from, to)
				dst := make([]complex128, rd.DstLen())
				for rep := 0; rep < 3; rep++ {
					rd.Run(local, dst)
					for i := range dst {
						if dst[i] != want[i] {
							t.Errorf("rank %d rep %d idx %d: plan %v != legacy %v",
								c.Rank(), rep, i, dst[i], want[i])
							return
						}
					}
				}
				// The one-shot convenience must agree too.
				oneShot := Redistribute(c, local, from, to)
				for i := range oneShot {
					if oneShot[i] != want[i] {
						t.Errorf("rank %d: one-shot mismatch at %d", c.Rank(), i)
						return
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPencilPlannedMatchesUnplanned pins the planned, persistent-buffer
// Forward/Inverse bitwise against a manually composed legacy pipeline
// (per-call batch transforms + one-shot redistributions).
func TestPencilPlannedMatchesUnplanned(t *testing.T) {
	n := [3]int{12, 10, 8}
	const p1, p2 = 3, 2
	full := randomGlobal(n, 77)
	err := mpi.Run(p1*p2, func(c *mpi.Comm) {
		p := NewPencil(c, n, p1, p2)
		rowFrom, rowTo, colFrom, colTo := restrictTransposes(n, p1, p2, p.c1, p.c2,
			p.layX, p.layY, p.layZ)

		local := scatterGlobal(c.Rank(), full, p.layX)
		// Legacy composition, allocating at every stage.
		ref := append([]complex128(nil), local...)
		p.planX.ForwardBatch(ref, p.rowsX)
		ref = redistributeReference(p.rowComm, ref, rowFrom, rowTo)
		p.planY.ForwardBatch(ref, p.rowsY)
		ref = redistributeReference(p.colComm, ref, colFrom, colTo)
		p.planZ.ForwardBatch(ref, p.rowsZ)

		spec := p.Forward(local)
		for i := range spec {
			if spec[i] != ref[i] {
				t.Errorf("rank %d idx %d: planned %v != legacy %v", c.Rank(), i, spec[i], ref[i])
				return
			}
		}

		// Inverse likewise.
		refInv := append([]complex128(nil), ref...)
		p.planZ.InverseBatch(refInv, p.rowsZ)
		refInv = redistributeReference(p.colComm, refInv, colTo, colFrom)
		p.planY.InverseBatch(refInv, p.rowsY)
		refInv = redistributeReference(p.rowComm, refInv, rowTo, rowFrom)
		p.planX.InverseBatch(refInv, p.rowsX)

		specCopy := append([]complex128(nil), spec...)
		back := p.Inverse(specCopy)
		for i := range back {
			if back[i] != refInv[i] {
				t.Errorf("rank %d idx %d: planned inverse %v != legacy %v", c.Rank(), i, back[i], refInv[i])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// gatherGlobalR reconstructs the global half-spectrum array from local
// half-grid z-pencil pieces.
func gatherGlobalR(c *mpi.Comm, local []complex128, lay *Layout) []complex128 {
	n := lay.N
	full := make([]complex128, n[0]*n[1]*n[2])
	forEach(lay.Boxes[c.Rank()], lay.Order, func(g [3]int, k int) {
		full[(g[0]*n[1]+g[1])*n[2]+g[2]] = local[k]
	})
	return mpi.AllReduce(c, full, func(a, b complex128) complex128 { return a + b })
}

// TestPencilRealMatchesComplex: the distributed r2c forward must reproduce
// the non-negative-kx half of the complex transform to 1e-12 relative, and
// InverseReal(ForwardReal(x)) must return x, across pencil, slab (p2=1,
// including p1 exceeding the half extent), and single-rank decompositions,
// on even, odd, and non-cubic grids.
func TestPencilRealMatchesComplex(t *testing.T) {
	cases := []struct {
		n      [3]int
		p1, p2 int
	}{
		{[3]int{8, 8, 8}, 1, 1},
		{[3]int{8, 8, 8}, 2, 2},
		{[3]int{8, 8, 8}, 8, 1}, // slab with p1 > n0/2+1: empty half-pencils
		{[3]int{8, 8, 8}, 1, 4},
		{[3]int{12, 10, 8}, 3, 2}, // non-cubic
		{[3]int{9, 6, 10}, 2, 2},  // odd x extent
		{[3]int{10, 10, 10}, 5, 2},
	}
	for _, tc := range cases {
		full := randomGlobal(tc.n, 5)
		// Real field: drop the imaginary parts.
		realFull := make([]float64, len(full))
		for i, v := range full {
			realFull[i] = real(v)
		}
		want := make([]complex128, len(full))
		for i, v := range realFull {
			want[i] = complex(v, 0)
		}
		fft.NewPlan3(tc.n[0], tc.n[1], tc.n[2]).Forward(want)
		err := mpi.Run(tc.p1*tc.p2, func(c *mpi.Comm) {
			p := NewPencil(c, tc.n, tc.p1, tc.p2)
			var local []float64
			forEach(p.LocalX(), p.layX.Order, func(g [3]int, k int) {
				local = append(local, realFull[(g[0]*tc.n[1]+g[1])*tc.n[2]+g[2]])
			})
			if local == nil {
				local = []float64{}
			}
			spec := p.ForwardReal(local)
			half := gatherGlobalR(c, spec, p.layZr)
			if c.Rank() == 0 {
				nh := p.NHalf()
				var scale float64
				for _, v := range want {
					if a := cmplx.Abs(v); a > scale {
						scale = a
					}
				}
				for kx := 0; kx < nh[0]; kx++ {
					for ky := 0; ky < nh[1]; ky++ {
						for kz := 0; kz < nh[2]; kz++ {
							got := half[(kx*nh[1]+ky)*nh[2]+kz]
							w := want[(kx*tc.n[1]+ky)*tc.n[2]+kz]
							if cmplx.Abs(got-w) > 1e-12*scale {
								t.Errorf("n=%v p=%d×%d mode (%d,%d,%d): r2c %v != complex %v",
									tc.n, tc.p1, tc.p2, kx, ky, kz, got, w)
								return
							}
						}
					}
				}
			}
			// Round trip.
			back := make([]float64, len(local))
			specCopy := append([]complex128(nil), spec...)
			p.InverseReal(specCopy, back)
			for i := range back {
				d := back[i] - local[i]
				if d < 0 {
					d = -d
				}
				if d > 1e-12*10 {
					t.Errorf("n=%v p=%d×%d rank %d: round trip mismatch at %d: %g != %g",
						tc.n, tc.p1, tc.p2, c.Rank(), i, back[i], local[i])
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
