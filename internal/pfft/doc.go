// Package pfft implements distributed 3-D FFTs over the mpi runtime, with
// both the slab decomposition (HACC's first-generation FFT, limited to
// Nrank < N) and the 2-D pencil decomposition (Nrank < N², paper §IV-A).
// Transposes are pairwise exchanges inside row/column sub-communicators,
// interleaved with local 1-D FFTs, mirroring the paper's description.
//
// Since PR 2 the package is plan-based: Redistributor[T] precomputes a
// layout-intersection schedule (empty legs dropped, the self overlap a
// direct copy, pack buffers persistent) for moving data between arbitrary
// rectangular layouts, and Pencil is a plan in the FFTW sense — four
// persistent transpose plans, per-stage scratch, pooled batched 1-D
// transforms, and a real-to-complex path (ForwardReal/InverseReal/
// ForEachKR) on the Hermitian half grid [n/2+1, n, n] that halves the x
// transforms, the transposes, and all downstream k-space work. Slices
// returned by transforms are plan-owned and valid until the next call.
package pfft
