package pfft

import (
	"fmt"

	"hacc/internal/fft"
	"hacc/internal/mpi"
	"hacc/internal/par"
)

// Pencil is a distributed 3-D FFT using a 2-D (pencil) domain decomposition
// over a p1×p2 process grid. The forward transform runs
//
//	FFT_x → transpose(row comm) → FFT_y → transpose(col comm) → FFT_z
//
// leaving the result distributed in z-pencils; the inverse retraces the
// steps. With p2 == 1 this degenerates into the slab decomposition used by
// the first version of HACC (and on Roadrunner in Fig. 6).
//
// A Pencil is a plan in the FFTW sense: the transpose schedules
// (Redistributor plans) and all transpose scratch are built once and reused,
// so steady-state transforms allocate nothing beyond the mpi runtime's
// per-message copies. Consequently the slices returned by Forward, Inverse,
// and ForwardReal are owned by the plan and valid only until the next
// transform call; input slices are consumed (transformed in place or
// overwritten). Transforms are collective and must not run concurrently on
// one plan.
type Pencil struct {
	comm    *mpi.Comm
	n       [3]int
	p1, p2  int
	c1, c2  int
	rowComm *mpi.Comm // ranks sharing c2, varying c1 (size p1)
	colComm *mpi.Comm // ranks sharing c1, varying c2 (size p2)

	layX, layY, layZ    *Layout
	planX, planY, planZ *fft.Plan
	rowsX, rowsY, rowsZ int

	// Planned transposes and persistent scratch for the complex path.
	rowFwd, rowInv   *Redistributor[complex128] // X↔Y within my row
	colFwd, colInv   *Redistributor[complex128] // Y↔Z within my column
	bufX, bufY, bufZ []complex128

	// Real-to-complex state on the half grid [n0/2+1, n1, n2], built
	// lazily on first use (purely local, so laziness stays collective-safe).
	nh                  [3]int
	layXr, layZr        *Layout
	rowFwdR, rowInvR    *Redistributor[complex128]
	colFwdR, colInvR    *Redistributor[complex128]
	bufXr, bufYr, bufZr []complex128
	rowsYr, rowsZr      int

	// pool, when set, dispatches the batched 1-D transforms across the
	// worker pool; rows are independent so the result is bitwise identical
	// to the serial path. The dispatch bodies are built once and read their
	// per-call parameters from the fields below (published to the workers by
	// the pool's channel send), so steady-state dispatch allocates nothing.
	pool         *par.Pool
	batchPlan    *fft.Plan
	batchData    []complex128
	batchInverse bool
	batchBody    func(lo, hi int)
	r2cSrc       []float64
	c2rDst       []float64
	r2cBody      func(lo, hi int)
	c2rBody      func(lo, hi int)

	// FFTCalls counts full complex 3-D transforms and RFFTCalls the
	// half-spectrum (r2c/c2r) ones, for the bench harness and flop model.
	FFTCalls  int64
	RFFTCalls int64
}

// NewPencil creates a distributed FFT plan on comm for an n[0]×n[1]×n[2]
// grid using a p1×p2 process grid; p1·p2 must equal the communicator size.
// Every rank of comm must call NewPencil collectively (it splits
// sub-communicators).
func NewPencil(c *mpi.Comm, n [3]int, p1, p2 int) *Pencil {
	if p1*p2 != c.Size() {
		panic(fmt.Sprintf("pfft: %d×%d process grid != comm size %d", p1, p2, c.Size()))
	}
	if p1 > n[0] || p1 > n[1] || p2 > n[1] || p2 > n[2] {
		panic(fmt.Sprintf("pfft: process grid %d×%d too large for %v grid", p1, p2, n))
	}
	me := c.Rank()
	pp := &Pencil{comm: c, n: n, p1: p1, p2: p2, c1: me / p2, c2: me % p2}
	pp.layX = PencilX(n, p1, p2)
	pp.layY = PencilY(n, p1, p2)
	pp.layZ = PencilZ(n, p1, p2)
	pp.rowComm = c.Split(pp.c2, pp.c1)
	pp.colComm = c.Split(pp.c1, pp.c2)

	rowFrom, rowTo, colFrom, colTo := restrictTransposes(n, p1, p2, pp.c1, pp.c2,
		pp.layX, pp.layY, pp.layZ)
	pp.rowFwd = NewRedistributor[complex128](pp.rowComm, rowFrom, rowTo)
	pp.rowInv = NewRedistributor[complex128](pp.rowComm, rowTo, rowFrom)
	pp.colFwd = NewRedistributor[complex128](pp.colComm, colFrom, colTo)
	pp.colInv = NewRedistributor[complex128](pp.colComm, colTo, colFrom)

	pp.planX = fft.NewPlan(n[0])
	if n[1] == n[0] {
		pp.planY = pp.planX
	} else {
		pp.planY = fft.NewPlan(n[1])
	}
	switch {
	case n[2] == n[0]:
		pp.planZ = pp.planX
	case n[2] == n[1]:
		pp.planZ = pp.planY
	default:
		pp.planZ = fft.NewPlan(n[2])
	}
	pp.rowsX = pp.layX.Boxes[me].Count() / n[0]
	pp.rowsY = pp.layY.Boxes[me].Count() / n[1]
	pp.rowsZ = pp.layZ.Boxes[me].Count() / n[2]
	pp.bufX = make([]complex128, pp.layX.Boxes[me].Count())
	pp.bufY = make([]complex128, pp.layY.Boxes[me].Count())
	pp.bufZ = make([]complex128, pp.layZ.Boxes[me].Count())
	pp.batchBody = func(lo, hi int) {
		n := pp.batchPlan.N()
		if pp.batchInverse {
			pp.batchPlan.InverseBatch(pp.batchData[lo*n:hi*n], hi-lo)
		} else {
			pp.batchPlan.ForwardBatch(pp.batchData[lo*n:hi*n], hi-lo)
		}
	}
	return pp
}

// restrictTransposes builds the row- and column-restricted layout pairs for
// the X→Y and Y→Z transposes of a pencil decomposition of grid n.
func restrictTransposes(n [3]int, p1, p2, c1, c2 int, layX, layY, layZ *Layout) (rowFrom, rowTo, colFrom, colTo *Layout) {
	// X→Y within my row: all boxes share my c2.
	rowFrom = &Layout{N: n, Order: layX.Order, Boxes: make([]Box, p1)}
	rowTo = &Layout{N: n, Order: layY.Order, Boxes: make([]Box, p1)}
	for j := 0; j < p1; j++ {
		rowFrom.Boxes[j] = layX.Boxes[j*p2+c2]
		rowTo.Boxes[j] = layY.Boxes[j*p2+c2]
	}
	// Y→Z within my column: boxes share my c1.
	colFrom = &Layout{N: n, Order: layY.Order, Boxes: make([]Box, p2)}
	colTo = &Layout{N: n, Order: layZ.Order, Boxes: make([]Box, p2)}
	for j := 0; j < p2; j++ {
		colFrom.Boxes[j] = layY.Boxes[c1*p2+j]
		colTo.Boxes[j] = layZ.Boxes[c1*p2+j]
	}
	return
}

// NewSlab creates a slab-decomposed FFT (1-D process grid), the
// first-generation HACC decomposition subject to Nrank < N.
func NewSlab(c *mpi.Comm, n [3]int) *Pencil {
	return NewPencil(c, n, c.Size(), 1)
}

// NewAuto creates a pencil FFT with a balanced process grid.
func NewAuto(c *mpi.Comm, n [3]int) *Pencil {
	d := mpi.BalancedDims(c.Size(), 2)
	return NewPencil(c, n, d[0], d[1])
}

// SetPool attaches a worker pool used to thread the batched 1-D transforms;
// nil (the default) keeps them serial. Not collective — each rank may choose
// independently, and the numerical result is identical either way.
func (p *Pencil) SetPool(pool *par.Pool) { p.pool = pool }

// LayoutX returns the input layout (x-pencils).
func (p *Pencil) LayoutX() *Layout { return p.layX }

// LayoutZ returns the spectral-space layout (z-pencils).
func (p *Pencil) LayoutZ() *Layout { return p.layZ }

// Comm returns the communicator the plan was built on.
func (p *Pencil) Comm() *mpi.Comm { return p.comm }

// N returns the global grid dimensions.
func (p *Pencil) N() [3]int { return p.n }

// LocalX returns this rank's box in the x-pencil layout.
func (p *Pencil) LocalX() Box { return p.layX.Boxes[p.comm.Rank()] }

// LocalZ returns this rank's box in the z-pencil layout.
func (p *Pencil) LocalZ() Box { return p.layZ.Boxes[p.comm.Rank()] }

// batch runs the 1-D transform over `rows` contiguous rows, sharded across
// the pool when one is attached (each row is independent, so threading is
// bitwise-neutral).
func (p *Pencil) batch(pl *fft.Plan, data []complex128, rows int, inverse bool) {
	if p.pool == nil || rows < 2 {
		if inverse {
			pl.InverseBatch(data, rows)
		} else {
			pl.ForwardBatch(data, rows)
		}
		return
	}
	p.batchPlan, p.batchData, p.batchInverse = pl, data, inverse
	p.pool.ForGrain(rows, 1, p.batchBody)
	p.batchData = nil // don't retain caller slices between calls
}

// Forward transforms data (local x-pencil block, x fastest) and returns the
// spectral coefficients in the z-pencil layout (z fastest). The input slice
// is consumed; the returned slice is plan-owned scratch, valid until the
// next transform call.
func (p *Pencil) Forward(data []complex128) []complex128 {
	if len(data) != len(p.bufX) {
		panic(fmt.Sprintf("pfft: forward input length %d != local x-pencil %d",
			len(data), len(p.bufX)))
	}
	p.batch(p.planX, data, p.rowsX, false)
	p.rowFwd.Run(data, p.bufY)
	p.batch(p.planY, p.bufY, p.rowsY, false)
	p.colFwd.Run(p.bufY, p.bufZ)
	p.batch(p.planZ, p.bufZ, p.rowsZ, false)
	p.FFTCalls++
	return p.bufZ
}

// Inverse transforms spectral data (z-pencil layout) back to real space
// (x-pencil layout), scaled so that Inverse(Forward(x)) == x. The input is
// consumed; the returned slice is plan-owned scratch, valid until the next
// transform call.
func (p *Pencil) Inverse(data []complex128) []complex128 {
	if len(data) != len(p.bufZ) {
		panic(fmt.Sprintf("pfft: inverse input length %d != local z-pencil %d",
			len(data), len(p.bufZ)))
	}
	p.batch(p.planZ, data, p.rowsZ, true)
	p.colInv.Run(data, p.bufY)
	p.batch(p.planY, p.bufY, p.rowsY, true)
	p.rowInv.Run(p.bufY, p.bufX)
	p.batch(p.planX, p.bufX, p.rowsX, true)
	p.FFTCalls++
	return p.bufX
}

// ForEachK visits every local point of the z-pencil (spectral) layout,
// passing global mode indices and the local storage index.
func (p *Pencil) ForEachK(fn func(kx, ky, kz, idx int)) {
	b := p.LocalZ()
	forEach(b, p.layZ.Order, func(g [3]int, k int) {
		fn(g[0], g[1], g[2], k)
	})
}

// initR2C lazily builds the half-spectrum machinery: pencil layouts of the
// [n0/2+1, n1, n2] half grid (same y/z splits as the complex path, so the
// real input layout coincides with LayoutX), transpose plans restricted to
// my row/column, and persistent scratch. Plan construction is purely local.
// When the x split exceeds the half extent (deep slab decompositions) some
// ranks simply own empty half-grid pencils and stay idle through the y/z
// stages.
func (p *Pencil) initR2C() {
	if p.layZr != nil {
		return
	}
	nh := [3]int{p.planX.HalfLen(), p.n[1], p.n[2]}
	p.nh = nh
	p.layXr = PencilX(nh, p.p1, p.p2)
	layYr := PencilY(nh, p.p1, p.p2)
	p.layZr = PencilZ(nh, p.p1, p.p2)
	rowFrom, rowTo, colFrom, colTo := restrictTransposes(nh, p.p1, p.p2, p.c1, p.c2,
		p.layXr, layYr, p.layZr)
	p.rowFwdR = NewRedistributor[complex128](p.rowComm, rowFrom, rowTo)
	p.rowInvR = NewRedistributor[complex128](p.rowComm, rowTo, rowFrom)
	p.colFwdR = NewRedistributor[complex128](p.colComm, colFrom, colTo)
	p.colInvR = NewRedistributor[complex128](p.colComm, colTo, colFrom)
	me := p.comm.Rank()
	p.rowsYr = layYr.Boxes[me].Count() / nh[1]
	p.rowsZr = p.layZr.Boxes[me].Count() / nh[2]
	p.bufXr = make([]complex128, p.layXr.Boxes[me].Count())
	p.bufYr = make([]complex128, layYr.Boxes[me].Count())
	p.bufZr = make([]complex128, p.layZr.Boxes[me].Count())
	n0, nh0 := p.n[0], nh[0]
	p.r2cBody = func(lo, hi int) {
		p.planX.ForwardRealBatch(p.bufXr[lo*nh0:hi*nh0], p.r2cSrc[lo*n0:hi*n0], hi-lo)
	}
	p.c2rBody = func(lo, hi int) {
		p.planX.InverseRealBatch(p.c2rDst[lo*n0:hi*n0], p.bufXr[lo*nh0:hi*nh0], hi-lo)
	}
}

// NHalf returns the half-spectrum grid dimensions [n0/2+1, n1, n2].
func (p *Pencil) NHalf() [3]int {
	p.initR2C()
	return p.nh
}

// LocalZR returns this rank's box in the half-spectrum z-pencil layout;
// x indices are modes kx ∈ [0, n0/2], the implied negative-kx modes being
// conjugates.
func (p *Pencil) LocalZR() Box {
	p.initR2C()
	return p.layZr.Boxes[p.comm.Rank()]
}

// ForEachKR visits every local point of the half-spectrum z-pencil layout,
// passing global mode indices (kx ∈ [0, n0/2]) and the local storage index.
func (p *Pencil) ForEachKR(fn func(kx, ky, kz, idx int)) {
	p.initR2C()
	forEach(p.layZr.Boxes[p.comm.Rank()], p.layZr.Order, func(g [3]int, k int) {
		fn(g[0], g[1], g[2], k)
	})
}

// ForwardReal transforms a real field (local x-pencil block, x fastest) and
// returns the non-negative-kx half of its spectrum in the half-grid z-pencil
// layout. Hermitian symmetry makes the omitted half redundant, so the x
// transform, both transposes, and all downstream k-space work are halved.
// The input is left untouched; the returned slice is plan-owned scratch,
// valid until the next transform call.
func (p *Pencil) ForwardReal(src []float64) []complex128 {
	p.initR2C()
	if len(src) != p.rowsX*p.n[0] {
		panic(fmt.Sprintf("pfft: real forward input length %d != local x-pencil %d",
			len(src), p.rowsX*p.n[0]))
	}
	if p.pool == nil || p.rowsX < 2 {
		p.planX.ForwardRealBatch(p.bufXr, src, p.rowsX)
	} else {
		p.r2cSrc = src
		p.pool.ForGrain(p.rowsX, 1, p.r2cBody)
		p.r2cSrc = nil
	}
	p.rowFwdR.Run(p.bufXr, p.bufYr)
	p.batch(p.planY, p.bufYr, p.rowsYr, false)
	p.colFwdR.Run(p.bufYr, p.bufZr)
	p.batch(p.planZ, p.bufZr, p.rowsZr, false)
	p.RFFTCalls++
	return p.bufZr
}

// InverseReal transforms a half spectrum (half-grid z-pencil layout, as
// returned by ForwardReal, possibly scaled by Hermitian-preserving kernels)
// back to a real field, written into dst (local x-pencil layout), scaled so
// that InverseReal(ForwardReal(x)) == x. The spec slice is consumed.
func (p *Pencil) InverseReal(spec []complex128, dst []float64) {
	p.initR2C()
	if len(spec) != len(p.bufZr) {
		panic(fmt.Sprintf("pfft: real inverse input length %d != local half z-pencil %d",
			len(spec), len(p.bufZr)))
	}
	if len(dst) != p.rowsX*p.n[0] {
		panic(fmt.Sprintf("pfft: real inverse output length %d != local x-pencil %d",
			len(dst), p.rowsX*p.n[0]))
	}
	p.batch(p.planZ, spec, p.rowsZr, true)
	p.colInvR.Run(spec, p.bufYr)
	p.batch(p.planY, p.bufYr, p.rowsYr, true)
	p.rowInvR.Run(p.bufYr, p.bufXr)
	if p.pool == nil || p.rowsX < 2 {
		p.planX.InverseRealBatch(dst, p.bufXr, p.rowsX)
	} else {
		p.c2rDst = dst
		p.pool.ForGrain(p.rowsX, 1, p.c2rBody)
		p.c2rDst = nil
	}
	p.RFFTCalls++
}
