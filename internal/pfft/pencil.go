package pfft

import (
	"fmt"

	"hacc/internal/fft"
	"hacc/internal/mpi"
)

// Pencil is a distributed 3-D FFT using a 2-D (pencil) domain decomposition
// over a p1×p2 process grid. The forward transform runs
//
//	FFT_x → transpose(row comm) → FFT_y → transpose(col comm) → FFT_z
//
// leaving the result distributed in z-pencils; the inverse retraces the
// steps. With p2 == 1 this degenerates into the slab decomposition used by
// the first version of HACC (and on Roadrunner in Fig. 6).
type Pencil struct {
	comm    *mpi.Comm
	n       [3]int
	p1, p2  int
	c1, c2  int
	rowComm *mpi.Comm // ranks sharing c2, varying c1 (size p1)
	colComm *mpi.Comm // ranks sharing c1, varying c2 (size p2)

	layX, layY, layZ    *Layout
	rowFrom, rowTo      *Layout // X→Y transpose restricted to my row
	colFrom, colTo      *Layout // Y→Z transpose restricted to my column
	planX, planY, planZ *fft.Plan
	rowsX, rowsY, rowsZ int

	// FFTCalls counts full 3-D transforms, for the bench harness.
	FFTCalls int64
}

// NewPencil creates a distributed FFT plan on comm for an n[0]×n[1]×n[2]
// grid using a p1×p2 process grid; p1·p2 must equal the communicator size.
// Every rank of comm must call NewPencil collectively (it splits
// sub-communicators).
func NewPencil(c *mpi.Comm, n [3]int, p1, p2 int) *Pencil {
	if p1*p2 != c.Size() {
		panic(fmt.Sprintf("pfft: %d×%d process grid != comm size %d", p1, p2, c.Size()))
	}
	if p1 > n[0] || p1 > n[1] || p2 > n[1] || p2 > n[2] {
		panic(fmt.Sprintf("pfft: process grid %d×%d too large for %v grid", p1, p2, n))
	}
	me := c.Rank()
	pp := &Pencil{comm: c, n: n, p1: p1, p2: p2, c1: me / p2, c2: me % p2}
	pp.layX = PencilX(n, p1, p2)
	pp.layY = PencilY(n, p1, p2)
	pp.layZ = PencilZ(n, p1, p2)
	pp.rowComm = c.Split(pp.c2, pp.c1)
	pp.colComm = c.Split(pp.c1, pp.c2)

	// Row-restricted layouts for the X→Y transpose: all boxes share my c2.
	pp.rowFrom = &Layout{N: n, Order: pp.layX.Order, Boxes: make([]Box, p1)}
	pp.rowTo = &Layout{N: n, Order: pp.layY.Order, Boxes: make([]Box, p1)}
	for j := 0; j < p1; j++ {
		pp.rowFrom.Boxes[j] = pp.layX.Boxes[j*p2+pp.c2]
		pp.rowTo.Boxes[j] = pp.layY.Boxes[j*p2+pp.c2]
	}
	// Column-restricted layouts for the Y→Z transpose: boxes share my c1.
	pp.colFrom = &Layout{N: n, Order: pp.layY.Order, Boxes: make([]Box, p2)}
	pp.colTo = &Layout{N: n, Order: pp.layZ.Order, Boxes: make([]Box, p2)}
	for j := 0; j < p2; j++ {
		pp.colFrom.Boxes[j] = pp.layY.Boxes[pp.c1*p2+j]
		pp.colTo.Boxes[j] = pp.layZ.Boxes[pp.c1*p2+j]
	}

	pp.planX = fft.NewPlan(n[0])
	if n[1] == n[0] {
		pp.planY = pp.planX
	} else {
		pp.planY = fft.NewPlan(n[1])
	}
	switch {
	case n[2] == n[0]:
		pp.planZ = pp.planX
	case n[2] == n[1]:
		pp.planZ = pp.planY
	default:
		pp.planZ = fft.NewPlan(n[2])
	}
	pp.rowsX = pp.layX.Boxes[me].Count() / n[0]
	pp.rowsY = pp.layY.Boxes[me].Count() / n[1]
	pp.rowsZ = pp.layZ.Boxes[me].Count() / n[2]
	return pp
}

// NewSlab creates a slab-decomposed FFT (1-D process grid), the
// first-generation HACC decomposition subject to Nrank < N.
func NewSlab(c *mpi.Comm, n [3]int) *Pencil {
	return NewPencil(c, n, c.Size(), 1)
}

// NewAuto creates a pencil FFT with a balanced process grid.
func NewAuto(c *mpi.Comm, n [3]int) *Pencil {
	d := mpi.BalancedDims(c.Size(), 2)
	return NewPencil(c, n, d[0], d[1])
}

// LayoutX returns the input layout (x-pencils).
func (p *Pencil) LayoutX() *Layout { return p.layX }

// LayoutZ returns the spectral-space layout (z-pencils).
func (p *Pencil) LayoutZ() *Layout { return p.layZ }

// Comm returns the communicator the plan was built on.
func (p *Pencil) Comm() *mpi.Comm { return p.comm }

// N returns the global grid dimensions.
func (p *Pencil) N() [3]int { return p.n }

// LocalX returns this rank's box in the x-pencil layout.
func (p *Pencil) LocalX() Box { return p.layX.Boxes[p.comm.Rank()] }

// LocalZ returns this rank's box in the z-pencil layout.
func (p *Pencil) LocalZ() Box { return p.layZ.Boxes[p.comm.Rank()] }

// Forward transforms data (local x-pencil block, x fastest) and returns the
// spectral coefficients in the z-pencil layout (z fastest). The input slice
// is consumed.
func (p *Pencil) Forward(data []complex128) []complex128 {
	if len(data) != p.layX.Boxes[p.comm.Rank()].Count() {
		panic(fmt.Sprintf("pfft: forward input length %d != local x-pencil %d",
			len(data), p.layX.Boxes[p.comm.Rank()].Count()))
	}
	p.planX.ForwardBatch(data, p.rowsX)
	data = Redistribute(p.rowComm, data, p.rowFrom, p.rowTo)
	p.planY.ForwardBatch(data, p.rowsY)
	data = Redistribute(p.colComm, data, p.colFrom, p.colTo)
	p.planZ.ForwardBatch(data, p.rowsZ)
	p.FFTCalls++
	return data
}

// Inverse transforms spectral data (z-pencil layout) back to real space
// (x-pencil layout), scaled so that Inverse(Forward(x)) == x.
func (p *Pencil) Inverse(data []complex128) []complex128 {
	if len(data) != p.layZ.Boxes[p.comm.Rank()].Count() {
		panic(fmt.Sprintf("pfft: inverse input length %d != local z-pencil %d",
			len(data), p.layZ.Boxes[p.comm.Rank()].Count()))
	}
	p.planZ.InverseBatch(data, p.rowsZ)
	data = Redistribute(p.colComm, data, p.colTo, p.colFrom)
	p.planY.InverseBatch(data, p.rowsY)
	data = Redistribute(p.rowComm, data, p.rowTo, p.rowFrom)
	p.planX.InverseBatch(data, p.rowsX)
	p.FFTCalls++
	return data
}

// ForEachK visits every local point of the z-pencil (spectral) layout,
// passing global mode indices and the local storage index.
func (p *Pencil) ForEachK(fn func(kx, ky, kz, idx int)) {
	b := p.LocalZ()
	forEach(b, p.layZ.Order, func(g [3]int, k int) {
		fn(g[0], g[1], g[2], k)
	})
}
