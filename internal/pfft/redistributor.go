package pfft

import (
	"fmt"

	"hacc/internal/mpi"
)

// redistTag is the point-to-point tag used by Redistributor traffic. Each
// collective Run exchanges at most one message per (ordered) rank pair, and
// the in-process mpi preserves per-pair FIFO order, so a fixed tag is safe.
const redistTag = 0x5244

// peerXfer is one planned transfer leg: the peer rank, the local storage
// indices visited in the sender's pack order, and (sends only) a persistent
// staging buffer reused across Runs.
type peerXfer[T any] struct {
	rank int
	idx  []int
	buf  []T
}

// Redistributor is a planned layout-to-layout redistribution. Building the
// plan walks the box intersections once: empty intersections are dropped (no
// zero-length messages), the rank's own overlap becomes a direct src→dst
// copy that never touches the mpi mailbox, and every remaining leg gets a
// precomputed index list plus (for sends) a persistent pack buffer. Run then
// reduces to gather→send, local copy, recv→scatter.
//
// A Redistributor is collective state: every rank of the communicator must
// build the plan over the same layout pair and call Run collectively. Run is
// not safe for concurrent use of one plan.
type Redistributor[T any] struct {
	comm           *mpi.Comm
	from, to       *Layout
	srcLen, dstLen int

	selfSrc, selfDst []int // direct copy: dst[selfDst[i]] = src[selfSrc[i]]
	sends, recvs     []peerXfer[T]
}

// NewRedistributor plans the redistribution from one layout to the other on
// the given communicator. Purely local (no communication).
func NewRedistributor[T any](c *mpi.Comm, from, to *Layout) *Redistributor[T] {
	p := c.Size()
	if len(from.Boxes) != p || len(to.Boxes) != p {
		panic(fmt.Sprintf("pfft: layout has %d/%d boxes for comm of size %d",
			len(from.Boxes), len(to.Boxes), p))
	}
	me := c.Rank()
	rd := &Redistributor[T]{
		comm: c, from: from, to: to,
		srcLen: from.Boxes[me].Count(),
		dstLen: to.Boxes[me].Count(),
	}
	mine := from.Boxes[me]
	dstBox := to.Boxes[me]
	for r := 0; r < p; r++ {
		// Outgoing: the part of my source box that rank r owns under `to`.
		if itc := Intersect(mine, to.Boxes[r]); !itc.Empty() {
			idx := make([]int, itc.Count())
			forEach(itc, from.Order, func(g [3]int, k int) {
				idx[k] = from.LocalIndex(me, g)
			})
			if r == me {
				rd.selfSrc = idx
			} else {
				rd.sends = append(rd.sends, peerXfer[T]{rank: r, idx: idx, buf: make([]T, len(idx))})
			}
		}
		// Incoming: the part of my destination box that rank r owns under
		// `from`. The sender packs in its own (from) storage order; walking
		// the same way maps arrival position k to my local index.
		if itc := Intersect(from.Boxes[r], dstBox); !itc.Empty() {
			idx := make([]int, itc.Count())
			forEach(itc, from.Order, func(g [3]int, k int) {
				idx[k] = to.LocalIndex(me, g)
			})
			if r == me {
				rd.selfDst = idx
			} else {
				rd.recvs = append(rd.recvs, peerXfer[T]{rank: r, idx: idx})
			}
		}
	}
	return rd
}

// SrcLen returns this rank's local element count under the source layout.
func (rd *Redistributor[T]) SrcLen() int { return rd.srcLen }

// DstLen returns this rank's local element count under the destination
// layout.
func (rd *Redistributor[T]) DstLen() int { return rd.dstLen }

// Run moves src (local data under the source layout) into dst (local data
// under the destination layout) and returns dst; a nil dst is allocated.
// src and dst must not alias. Collective over the plan's communicator.
func (rd *Redistributor[T]) Run(src, dst []T) []T {
	if len(src) != rd.srcLen {
		panic(fmt.Sprintf("pfft: local data length %d != box count %d", len(src), rd.srcLen))
	}
	if dst == nil {
		dst = make([]T, rd.dstLen)
	} else if len(dst) != rd.dstLen {
		panic(fmt.Sprintf("pfft: destination length %d != box count %d", len(dst), rd.dstLen))
	}
	// Sends are eager (buffered) in the mpi runtime, so posting them all
	// before any receive cannot deadlock.
	for i := range rd.sends {
		s := &rd.sends[i]
		for k, j := range s.idx {
			s.buf[k] = src[j]
		}
		mpi.Send(rd.comm, s.rank, redistTag, s.buf)
	}
	for k, j := range rd.selfSrc {
		dst[rd.selfDst[k]] = src[j]
	}
	for i := range rd.recvs {
		r := &rd.recvs[i]
		buf := mpi.Recv[T](rd.comm, r.rank, redistTag)
		if len(buf) != len(r.idx) {
			panic(fmt.Sprintf("pfft: received %d elements from rank %d, expected %d",
				len(buf), r.rank, len(r.idx)))
		}
		for k, j := range r.idx {
			dst[j] = buf[k]
		}
	}
	return dst
}
