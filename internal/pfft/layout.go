package pfft

import "hacc/internal/mpi"

// Box is a half-open axis-aligned box [Lo, Hi) in 3-D grid coordinates.
type Box struct {
	Lo, Hi [3]int
}

// Size returns the extent along dimension d.
func (b Box) Size(d int) int { return b.Hi[d] - b.Lo[d] }

// Count returns the number of grid points inside the box.
func (b Box) Count() int {
	n := 1
	for d := 0; d < 3; d++ {
		if b.Hi[d] <= b.Lo[d] {
			return 0
		}
		n *= b.Size(d)
	}
	return n
}

// Empty reports whether the box contains no points.
func (b Box) Empty() bool { return b.Count() == 0 }

// Contains reports whether the point (x,y,z) lies inside the box.
func (b Box) Contains(x, y, z int) bool {
	return x >= b.Lo[0] && x < b.Hi[0] &&
		y >= b.Lo[1] && y < b.Hi[1] &&
		z >= b.Lo[2] && z < b.Hi[2]
}

// Intersect returns the overlap of two boxes (possibly empty).
func Intersect(a, b Box) Box {
	var r Box
	for d := 0; d < 3; d++ {
		r.Lo[d] = max(a.Lo[d], b.Lo[d])
		r.Hi[d] = min(a.Hi[d], b.Hi[d])
		if r.Hi[d] < r.Lo[d] {
			r.Hi[d] = r.Lo[d]
		}
	}
	return r
}

// Layout describes how a global N[0]×N[1]×N[2] array is partitioned into
// one rectangular box per rank, and in what axis order each rank stores its
// local data. Order is a permutation of {0,1,2} from slowest to fastest
// varying axis; e.g. Order={2,1,0} stores x fastest (contiguous).
type Layout struct {
	N     [3]int
	Boxes []Box
	Order [3]int
}

// Box returns the box owned by the given rank.
func (l *Layout) Box(rank int) Box { return l.Boxes[rank] }

// LocalIndex converts global coordinates to the local storage index within
// the given rank's box.
func (l *Layout) LocalIndex(rank int, g [3]int) int {
	b := l.Boxes[rank]
	o := l.Order
	c0 := g[o[0]] - b.Lo[o[0]]
	c1 := g[o[1]] - b.Lo[o[1]]
	c2 := g[o[2]] - b.Lo[o[2]]
	return (c0*b.Size(o[1])+c1)*b.Size(o[2]) + c2
}

// chunk returns the [lo,hi) range of the i-th of p near-equal chunks of n.
func chunk(i, p, n int) (int, int) { return i * n / p, (i + 1) * n / p }

// Block3D builds the PM-style 3-D block layout over a dims[0]×dims[1]×dims[2]
// process grid (row-major rank order, z fastest in storage).
func Block3D(n [3]int, dims [3]int) *Layout {
	p := dims[0] * dims[1] * dims[2]
	l := &Layout{N: n, Order: [3]int{0, 1, 2}}
	l.Boxes = make([]Box, p)
	for r := 0; r < p; r++ {
		cz := r % dims[2]
		cy := (r / dims[2]) % dims[1]
		cx := r / (dims[1] * dims[2])
		var b Box
		b.Lo[0], b.Hi[0] = chunk(cx, dims[0], n[0])
		b.Lo[1], b.Hi[1] = chunk(cy, dims[1], n[1])
		b.Lo[2], b.Hi[2] = chunk(cz, dims[2], n[2])
		l.Boxes[r] = b
	}
	return l
}

// pencilLayout builds a layout with the full extent along axis `full` and
// the other two axes split over a p1×p2 grid; ranks are ordered so that
// rank = c1*p2 + c2. The storage order puts axis `full` fastest.
func pencilLayout(n [3]int, full int, p1, p2 int) *Layout {
	// The two split axes, in ascending order.
	var s1, s2 int
	switch full {
	case 0:
		s1, s2 = 1, 2
	case 1:
		s1, s2 = 0, 2
	default:
		s1, s2 = 0, 1
	}
	l := &Layout{N: n, Order: [3]int{s1, s2, full}}
	l.Boxes = make([]Box, p1*p2)
	for c1 := 0; c1 < p1; c1++ {
		for c2 := 0; c2 < p2; c2++ {
			var b Box
			b.Lo[full], b.Hi[full] = 0, n[full]
			b.Lo[s1], b.Hi[s1] = chunk(c1, p1, n[s1])
			b.Lo[s2], b.Hi[s2] = chunk(c2, p2, n[s2])
			l.Boxes[c1*p2+c2] = b
		}
	}
	return l
}

// PencilX returns the pencil layout with full x-extent, y split over p1 and
// z split over p2.
func PencilX(n [3]int, p1, p2 int) *Layout { return pencilLayout(n, 0, p1, p2) }

// PencilY returns the pencil layout with full y-extent, x split over p1 and
// z split over p2.
func PencilY(n [3]int, p1, p2 int) *Layout { return pencilLayout(n, 1, p1, p2) }

// PencilZ returns the pencil layout with full z-extent, x split over p1 and
// y split over p2.
func PencilZ(n [3]int, p1, p2 int) *Layout { return pencilLayout(n, 2, p1, p2) }

// forEach visits every point of box b in the storage order `order`, calling
// fn with the global coordinates and a running counter.
func forEach(b Box, order [3]int, fn func(g [3]int, k int)) {
	var g [3]int
	k := 0
	o0, o1, o2 := order[0], order[1], order[2]
	for a := b.Lo[o0]; a < b.Hi[o0]; a++ {
		g[o0] = a
		for bb := b.Lo[o1]; bb < b.Hi[o1]; bb++ {
			g[o1] = bb
			for cc := b.Lo[o2]; cc < b.Hi[o2]; cc++ {
				g[o2] = cc
				fn(g, k)
				k++
			}
		}
	}
}

// Redistribute moves a distributed array from one layout to another. src is
// the caller's local data in `from` storage order; the returned slice is the
// caller's local data under `to`. One-shot convenience over Redistributor:
// empty intersections exchange no messages and the rank's own overlap is a
// direct copy (the old implementation round-tripped both through the mpi
// mailbox). Hot paths should build a Redistributor once and reuse it.
func Redistribute[T any](c *mpi.Comm, src []T, from, to *Layout) []T {
	return NewRedistributor[T](c, from, to).Run(src, nil)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
