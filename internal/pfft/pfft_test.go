package pfft

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"hacc/internal/fft"
	"hacc/internal/mpi"
)

// gatherGlobal reconstructs the full global array from local pieces.
func gatherGlobal(c *mpi.Comm, local []complex128, lay *Layout) []complex128 {
	n := lay.N
	full := make([]complex128, n[0]*n[1]*n[2])
	me := c.Rank()
	forEach(lay.Boxes[me], lay.Order, func(g [3]int, k int) {
		full[(g[0]*n[1]+g[1])*n[2]+g[2]] = local[k]
	})
	sum := mpi.AllReduce(c, full, func(a, b complex128) complex128 { return a + b })
	return sum
}

// scatterGlobal extracts this rank's local piece from a global array.
func scatterGlobal(rank int, full []complex128, lay *Layout) []complex128 {
	n := lay.N
	local := make([]complex128, lay.Boxes[rank].Count())
	forEach(lay.Boxes[rank], lay.Order, func(g [3]int, k int) {
		local[k] = full[(g[0]*n[1]+g[1])*n[2]+g[2]]
	})
	return local
}

func randomGlobal(n [3]int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	full := make([]complex128, n[0]*n[1]*n[2])
	for i := range full {
		full[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return full
}

func TestBoxBasics(t *testing.T) {
	b := Box{Lo: [3]int{1, 2, 3}, Hi: [3]int{4, 5, 6}}
	if b.Count() != 27 {
		t.Errorf("count %d", b.Count())
	}
	if !b.Contains(1, 2, 3) || b.Contains(4, 5, 6) {
		t.Error("contains wrong at corners")
	}
	i := Intersect(b, Box{Lo: [3]int{3, 0, 0}, Hi: [3]int{10, 10, 4}})
	if i.Count() != 1*3*1 {
		t.Errorf("intersect count %d", i.Count())
	}
	empty := Intersect(b, Box{Lo: [3]int{9, 9, 9}, Hi: [3]int{10, 10, 10}})
	if !empty.Empty() {
		t.Error("expected empty intersection")
	}
}

func TestLayoutsPartition(t *testing.T) {
	// Every layout must tile the global grid exactly once.
	n := [3]int{12, 10, 9}
	layouts := []*Layout{
		Block3D(n, [3]int{2, 2, 2}),
		PencilX(n, 3, 2),
		PencilY(n, 2, 3),
		PencilZ(n, 5, 2),
	}
	for li, lay := range layouts {
		seen := make([]int, n[0]*n[1]*n[2])
		for r := range lay.Boxes {
			forEach(lay.Boxes[r], lay.Order, func(g [3]int, _ int) {
				seen[(g[0]*n[1]+g[1])*n[2]+g[2]]++
			})
		}
		for i, s := range seen {
			if s != 1 {
				t.Fatalf("layout %d: point %d covered %d times", li, i, s)
			}
		}
	}
}

func TestLocalIndexBijective(t *testing.T) {
	n := [3]int{8, 6, 4}
	lay := PencilY(n, 2, 2)
	for r := range lay.Boxes {
		seen := map[int]bool{}
		forEach(lay.Boxes[r], lay.Order, func(g [3]int, k int) {
			idx := lay.LocalIndex(r, g)
			if idx != k {
				t.Fatalf("rank %d: LocalIndex %d != traversal order %d", r, idx, k)
			}
			if seen[idx] {
				t.Fatalf("rank %d: duplicate index %d", r, idx)
			}
			seen[idx] = true
		})
	}
}

func TestRedistributeRoundTrip(t *testing.T) {
	n := [3]int{8, 6, 10}
	full := randomGlobal(n, 7)
	for _, procs := range [][3]int{{2, 2, 1}, {1, 2, 2}, {4, 1, 1}} {
		p := procs[0] * procs[1] * procs[2]
		from := Block3D(n, procs)
		to := PencilZ(n, procs[0]*procs[1]*procs[2]/2, 2)
		if p%2 != 0 {
			continue
		}
		err := mpi.Run(p, func(c *mpi.Comm) {
			local := scatterGlobal(c.Rank(), full, from)
			moved := Redistribute(c, local, from, to)
			// Verify against direct extraction.
			want := scatterGlobal(c.Rank(), full, to)
			for i := range moved {
				if moved[i] != want[i] {
					t.Errorf("procs=%v rank=%d idx=%d got %v want %v",
						procs, c.Rank(), i, moved[i], want[i])
					return
				}
			}
			// And back again.
			back := Redistribute(c, moved, to, from)
			for i := range back {
				if back[i] != local[i] {
					t.Errorf("round trip mismatch at %d", i)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPencilForwardMatchesSerial(t *testing.T) {
	cases := []struct {
		n      [3]int
		p1, p2 int
	}{
		{[3]int{8, 8, 8}, 1, 1},
		{[3]int{8, 8, 8}, 2, 2},
		{[3]int{8, 8, 8}, 4, 1}, // slab
		{[3]int{8, 8, 8}, 1, 4},
		{[3]int{12, 10, 8}, 3, 2}, // non-cubic, non-power-of-two
		{[3]int{10, 10, 10}, 5, 2},
	}
	for _, tc := range cases {
		full := randomGlobal(tc.n, 42)
		want := append([]complex128(nil), full...)
		fft.NewPlan3(tc.n[0], tc.n[1], tc.n[2]).Forward(want)
		err := mpi.Run(tc.p1*tc.p2, func(c *mpi.Comm) {
			p := NewPencil(c, tc.n, tc.p1, tc.p2)
			local := scatterGlobal(c.Rank(), full, p.LayoutX())
			spec := p.Forward(local)
			wantLocal := scatterGlobal(c.Rank(), want, p.LayoutZ())
			for i := range spec {
				if cmplx.Abs(spec[i]-wantLocal[i]) > 1e-8 {
					t.Errorf("n=%v p=%d×%d rank=%d idx=%d got %v want %v",
						tc.n, tc.p1, tc.p2, c.Rank(), i, spec[i], wantLocal[i])
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPencilRoundTrip(t *testing.T) {
	n := [3]int{16, 16, 16}
	full := randomGlobal(n, 3)
	err := mpi.Run(4, func(c *mpi.Comm) {
		p := NewAuto(c, n)
		local := scatterGlobal(c.Rank(), full, p.LayoutX())
		orig := append([]complex128(nil), local...)
		spec := p.Forward(local)
		back := p.Inverse(spec)
		for i := range back {
			if cmplx.Abs(back[i]-orig[i]) > 1e-9 {
				t.Errorf("rank %d idx %d: %v != %v", c.Rank(), i, back[i], orig[i])
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSlabMatchesPencil(t *testing.T) {
	n := [3]int{8, 12, 8}
	full := randomGlobal(n, 9)
	want := append([]complex128(nil), full...)
	fft.NewPlan3(n[0], n[1], n[2]).Forward(want)
	err := mpi.Run(4, func(c *mpi.Comm) {
		p := NewSlab(c, n)
		local := scatterGlobal(c.Rank(), full, p.LayoutX())
		spec := p.Forward(local)
		wantLocal := scatterGlobal(c.Rank(), want, p.LayoutZ())
		for i := range spec {
			if cmplx.Abs(spec[i]-wantLocal[i]) > 1e-8 {
				t.Errorf("slab rank %d idx %d mismatch", c.Rank(), i)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForEachKCoversSpectrum(t *testing.T) {
	n := [3]int{6, 6, 6}
	counts := make([]int64, n[0]*n[1]*n[2])
	err := mpi.Run(4, func(c *mpi.Comm) {
		p := NewPencil(c, n, 2, 2)
		local := make([]int64, n[0]*n[1]*n[2])
		p.ForEachK(func(kx, ky, kz, idx int) {
			local[(kx*n[1]+ky)*n[2]+kz]++
		})
		tot := mpi.AllReduce(c, local, mpi.SumI64)
		if c.Rank() == 0 {
			copy(counts, tot)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range counts {
		if v != 1 {
			t.Fatalf("mode %d visited %d times", i, v)
		}
	}
}

// Property: the distributed transform of a random field on a random process
// grid matches the serial transform.
func TestPencilMatchesSerialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nside := []int{4, 6, 8}[rng.Intn(3)]
		n := [3]int{nside, nside, nside}
		grids := [][2]int{{1, 1}, {2, 1}, {2, 2}, {1, 2}, {4, 1}, {2, 3}}
		g := grids[rng.Intn(len(grids))]
		if g[0] > nside || g[1] > nside {
			return true
		}
		full := randomGlobal(n, seed)
		want := append([]complex128(nil), full...)
		fft.NewPlan3(n[0], n[1], n[2]).Forward(want)
		ok := true
		err := mpi.Run(g[0]*g[1], func(c *mpi.Comm) {
			p := NewPencil(c, n, g[0], g[1])
			local := scatterGlobal(c.Rank(), full, p.LayoutX())
			spec := p.Forward(local)
			wantLocal := scatterGlobal(c.Rank(), want, p.LayoutZ())
			for i := range spec {
				if cmplx.Abs(spec[i]-wantLocal[i]) > 1e-7 {
					ok = false
					return
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
