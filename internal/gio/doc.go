// Package gio is a GenericIO-inspired self-describing container format for
// every durable product the simulation emits: checkpoints, particle
// snapshots, halo catalogs, and power spectra (PR 5; HACC's GenericIO
// library, arXiv:1410.2805 §IV).
//
// A container holds, per writer rank, a set of named typed columns
// (float32/float64/int64/uint64), each protected by a CRC32-C footer. The
// front of the file is a self-describing index — column table, caller meta
// blob, and a per-rank (offset, rows) table — protected by its own CRC and
// validated structurally against the real file size before any
// header-declared quantity is trusted, so truncated or corrupt files fail
// loudly instead of over-allocating. The rank table makes reading any
// writer rank's data an O(1) seek regardless of container size, and a
// reader may run at a different rank count than the writer: each reading
// rank adopts a round-robin share of the writer blocks and the domain layer
// reassigns records to their geometric owners.
//
// Two write paths share the byte layout exactly. WriteTo streams a
// single-rank container to an io.Writer (per-rank snapshot files).
// Writer.Write is collective: the per-rank block offsets are computed from
// one AllGather of row counts, every rank then writes its disjoint region
// of a shared temporary file through its own descriptor (the MPI-IO
// pattern), failures are agreed via mpi.AllOK so all ranks observe one
// outcome, and rank 0 atomically renames the finished container into
// place. Writer scratch persists across calls, so a warm collective write
// allocates nothing beyond file descriptors and the index exchange.
//
// Every write, read, and fsync passes a named fault-injection point
// (internal/fault, PR 6), so torn writes and transient I/O errors are
// manufactured on demand in chaos tests; because all failure paths are
// collectively agreed, an injected single-rank fault still yields one
// consistent outcome — which is what lets core retry a failed collective
// checkpoint write in lockstep.
package gio
