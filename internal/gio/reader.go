package gio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"hacc/internal/fault"
)

// VarInfo describes one column of an open container.
type VarInfo struct {
	Name string
	Type Type
}

// Index is the parsed, CRC-verified front matter of a container: the column
// table, the meta blob, and the per-rank (offset, rows) table. An Index on
// its own supports every metadata query; reading column data additionally
// needs the random-access Reader.
type Index struct {
	nranks  int
	vars    []VarInfo
	meta    []byte
	offsets []uint64 // per-rank first-block offset
	rows    [][]uint64
	size    int64 // declared container size
}

// NumRanks returns the number of writer ranks recorded in the container.
func (ix *Index) NumRanks() int { return ix.nranks }

// Meta returns the container's metadata blob (index-owned; callers must not
// modify it).
func (ix *Index) Meta() []byte { return ix.meta }

// Vars returns the column descriptors in on-disk order (index-owned).
func (ix *Index) Vars() []VarInfo { return ix.vars }

// Size returns the container's total size in bytes.
func (ix *Index) Size() int64 { return ix.size }

// varIndex resolves a column name.
func (ix *Index) varIndex(name string) (int, error) {
	for i := range ix.vars {
		if ix.vars[i].Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("gio: no column %q in container", name)
}

// Rows returns the number of records writer rank r stored in the named
// column.
func (ix *Index) Rows(rank int, name string) (int64, error) {
	if rank < 0 || rank >= ix.nranks {
		return 0, fmt.Errorf("gio: rank %d out of range [0,%d)", rank, ix.nranks)
	}
	vi, err := ix.varIndex(name)
	if err != nil {
		return 0, err
	}
	return int64(ix.rows[rank][vi]), nil
}

// blockAt returns the file offset and row count of (rank, var vi). The
// offsets were validated against the actual file size when the index was
// parsed, so the returned range is trusted.
func (ix *Index) blockAt(rank, vi int) (off int64, rows uint64) {
	off = int64(ix.offsets[rank])
	for u := 0; u < vi; u++ {
		off += int64(blockSize(ix.rows[rank][u], ix.vars[u].Type.Size()))
	}
	return off, ix.rows[rank][vi]
}

// parseIndex validates and parses a complete index region. actualSize is
// the real readable container size, or -1 when unknown (sequential readers
// that cannot stat their source); when known it must match the declared
// file size exactly, which catches truncation before any data read.
func parseIndex(hdr []byte, rest func(n int64) ([]byte, error), actualSize int64) (*Index, error) {
	if len(hdr) < headerSize {
		return nil, fmt.Errorf("gio: container too small: %d bytes, need at least the %d-byte header", len(hdr), headerSize)
	}
	if !bytes.Equal(hdr[0:8], magic[:]) {
		return nil, fmt.Errorf("gio: not a container (bad magic %x)", hdr[0:8])
	}
	version := binary.LittleEndian.Uint32(hdr[8:])
	if version != Version {
		return nil, fmt.Errorf("gio: unsupported container version %d (this build reads version %d)", version, Version)
	}
	nranks := int(binary.LittleEndian.Uint32(hdr[12:]))
	nvars := int(binary.LittleEndian.Uint32(hdr[16:]))
	metaLen := int(binary.LittleEndian.Uint32(hdr[20:]))
	dataStart := binary.LittleEndian.Uint64(hdr[24:])
	fileSize := binary.LittleEndian.Uint64(hdr[32:])
	wantCRC := binary.LittleEndian.Uint32(hdr[40:])
	if nranks < 1 || nranks > maxRanks {
		return nil, fmt.Errorf("gio: corrupt header: %d ranks outside [1,%d]", nranks, maxRanks)
	}
	if nvars < 1 || nvars > maxVars {
		return nil, fmt.Errorf("gio: corrupt header: %d columns outside [1,%d]", nvars, maxVars)
	}
	if want := indexSize(nvars, nranks, metaLen); dataStart != uint64(want) {
		return nil, fmt.Errorf("gio: corrupt header: data start %d, computed %d", dataStart, want)
	}
	if fileSize < dataStart {
		return nil, fmt.Errorf("gio: corrupt header: file size %d smaller than index %d", fileSize, dataStart)
	}
	if actualSize >= 0 && int64(fileSize) != actualSize {
		return nil, fmt.Errorf("gio: truncated container: header declares %d bytes, have %d", fileSize, actualSize)
	}
	// Fetch the remainder of the index; its size is now structurally bounded
	// (and, when actualSize is known, bounded by real bytes on disk).
	body, err := rest(int64(dataStart) - headerSize)
	if err != nil {
		return nil, fmt.Errorf("gio: truncated container index: %w", err)
	}
	// Verify the index CRC with the stored CRC field zeroed.
	crc := crc32.Update(0, castagnoli, hdr[:40])
	crc = crc32.Update(crc, castagnoli, []byte{0, 0, 0, 0})
	crc = crc32.Update(crc, castagnoli, hdr[44:headerSize])
	crc = crc32.Update(crc, castagnoli, body)
	if crc != wantCRC {
		return nil, fmt.Errorf("gio: index CRC mismatch: have %08x, want %08x", crc, wantCRC)
	}

	ix := &Index{nranks: nranks, size: int64(fileSize)}
	ix.vars = make([]VarInfo, nvars)
	for i := 0; i < nvars; i++ {
		e := body[i*varEntrySize:]
		name := e[:nameSize]
		if k := bytes.IndexByte(name, 0); k >= 0 {
			name = name[:k]
		}
		typ := Type(binary.LittleEndian.Uint32(e[nameSize:]))
		elem := int(binary.LittleEndian.Uint32(e[nameSize+4:]))
		if typ.Size() == 0 {
			return nil, fmt.Errorf("gio: column %q has unknown type code %d", name, uint32(typ))
		}
		if elem != typ.Size() {
			return nil, fmt.Errorf("gio: column %q declares element size %d, %v needs %d", name, elem, typ, typ.Size())
		}
		if len(name) == 0 {
			return nil, fmt.Errorf("gio: column %d has an empty name", i)
		}
		ix.vars[i] = VarInfo{Name: string(name), Type: typ}
	}
	for i := range ix.vars {
		for j := 0; j < i; j++ {
			if ix.vars[j].Name == ix.vars[i].Name {
				return nil, fmt.Errorf("gio: duplicate column name %q", ix.vars[i].Name)
			}
		}
	}
	ix.meta = append([]byte(nil), body[nvars*varEntrySize:nvars*varEntrySize+metaLen]...)

	// Rank table: every stored offset must equal the running layout sum and
	// every block must fit inside the declared file, so nothing a later Read
	// seeks to can be outside real data.
	rt := body[nvars*varEntrySize+metaLen:]
	ix.offsets = make([]uint64, nranks)
	ix.rows = make([][]uint64, nranks)
	rowsFlat := make([]uint64, nranks*nvars)
	expect := dataStart
	for r := 0; r < nranks; r++ {
		e := rt[r*8*(1+nvars):]
		ix.offsets[r] = binary.LittleEndian.Uint64(e)
		if ix.offsets[r] != expect {
			return nil, fmt.Errorf("gio: corrupt rank table: rank %d data at %d, want %d", r, ix.offsets[r], expect)
		}
		ix.rows[r] = rowsFlat[r*nvars : (r+1)*nvars]
		for v := 0; v < nvars; v++ {
			rows := binary.LittleEndian.Uint64(e[8*(1+v):])
			elem := uint64(ix.vars[v].Type.Size())
			if rows > (fileSize-expect)/elem {
				return nil, fmt.Errorf("gio: corrupt rank table: rank %d column %q declares %d rows, container has %d bytes left",
					r, ix.vars[v].Name, rows, fileSize-expect)
			}
			ix.rows[r][v] = rows
			expect += blockSize(rows, int(elem))
			if expect > fileSize {
				return nil, fmt.Errorf("gio: corrupt rank table: rank %d data ends at %d, past file size %d", r, expect, fileSize)
			}
		}
	}
	if expect != fileSize {
		return nil, fmt.Errorf("gio: corrupt rank table: data ends at %d, file size %d", expect, fileSize)
	}
	return ix, nil
}

// ReadIndexOnly reads just the container index from a sequential stream —
// for callers that need counts and metadata without decoding (or even
// having random access to) the data region. The stream is left positioned
// at the first data block. The source's true size is unknown here, so the
// index is read in bounded chunks: allocation grows only with bytes the
// stream actually delivers, and a header declaring a huge index against a
// short file fails at the first missing chunk instead of over-allocating.
func ReadIndexOnly(r io.Reader) (*Index, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("gio: reading container header: %w", err)
	}
	return parseIndex(hdr, func(n int64) ([]byte, error) {
		const chunk = 1 << 20
		first := n
		if first > chunk {
			first = chunk
		}
		b := make([]byte, 0, first)
		for int64(len(b)) < n {
			c := n - int64(len(b))
			if c > chunk {
				c = chunk
			}
			off := len(b)
			b = append(b, make([]byte, c)...)
			if _, err := io.ReadFull(r, b[off:]); err != nil {
				return nil, err
			}
		}
		return b, nil
	}, -1)
}

// Reader is an open container with O(1) random access to any writer rank's
// column blocks.
type Reader struct {
	*Index
	ra     io.ReaderAt
	closer io.Closer
}

// Open opens a container file and parses + verifies its index.
func Open(path string) (*Reader, error) {
	if inj := fault.Armed(); inj != nil {
		if err := inj.HitErr(fault.PointRead, -1, -1); err != nil {
			return nil, fmt.Errorf("%w (opening %s)", err, path)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	r.closer = f
	return r, nil
}

// NewReader parses a container from any random-access source of the given
// actual size (e.g. a bytes.Reader for an in-memory container).
func NewReader(ra io.ReaderAt, size int64) (*Reader, error) {
	hdr := make([]byte, headerSize)
	if size >= headerSize {
		if _, err := ra.ReadAt(hdr, 0); err != nil {
			return nil, fmt.Errorf("gio: reading container header: %w", err)
		}
	} else if size > 0 {
		hdr = hdr[:size]
		if _, err := ra.ReadAt(hdr, 0); err != nil {
			return nil, fmt.Errorf("gio: reading container header: %w", err)
		}
	} else {
		hdr = nil
	}
	ix, err := parseIndex(hdr, func(n int64) ([]byte, error) {
		b := make([]byte, n)
		_, err := ra.ReadAt(b, headerSize)
		return b, err
	}, size)
	if err != nil {
		return nil, err
	}
	return &Reader{Index: ix, ra: ra}, nil
}

// Close releases the underlying file, when the Reader owns one.
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// Verify reads and CRC-checks every column block of every writer rank
// without decoding any of them — the full-container integrity probe a
// restorable-checkpoint scan uses before committing to a file (the index
// CRC alone cannot vouch for the data region).
func (r *Reader) Verify() error {
	for rank := 0; rank < r.nranks; rank++ {
		for vi := range r.vars {
			if _, err := r.readBlock(rank, vi); err != nil {
				return err
			}
		}
	}
	return nil
}

// readBlock fetches and CRC-verifies one column block's payload.
func (r *Reader) readBlock(rank, vi int) ([]byte, error) {
	if inj := fault.Armed(); inj != nil {
		if err := inj.HitErr(fault.PointRead, -1, -1); err != nil {
			return nil, fmt.Errorf("gio: reading column %q of rank %d: %w", r.vars[vi].Name, rank, err)
		}
	}
	off, rows := r.blockAt(rank, vi)
	n := rows * uint64(r.vars[vi].Type.Size())
	buf := make([]byte, n+crcFooterSize)
	if _, err := r.ra.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("gio: reading column %q of rank %d: %w", r.vars[vi].Name, rank, err)
	}
	want := binary.LittleEndian.Uint32(buf[n:])
	if crc := crc32.Checksum(buf[:n], castagnoli); crc != want {
		return nil, fmt.Errorf("gio: column %q of rank %d: block CRC mismatch (have %08x, want %08x)",
			r.vars[vi].Name, rank, crc, want)
	}
	return buf[:n], nil
}

// Elem constrains the readable column element types (exact types, so the
// decoder's type switch is total).
type Elem interface {
	float32 | float64 | int64 | uint64
}

// ReadColumn appends writer rank `rank`'s named column onto dst and returns
// the extended slice. The stored element type must match T exactly; the
// block's CRC32-C footer is verified before any element is returned.
func ReadColumn[T Elem](r *Reader, rank int, name string, dst []T) ([]T, error) {
	if rank < 0 || rank >= r.nranks {
		return dst, fmt.Errorf("gio: rank %d out of range [0,%d)", rank, r.nranks)
	}
	vi, err := r.varIndex(name)
	if err != nil {
		return dst, err
	}
	var want Type
	switch any(dst).(type) {
	case []float32:
		want = Float32
	case []float64:
		want = Float64
	case []int64:
		want = Int64
	case []uint64:
		want = Uint64
	}
	if got := r.vars[vi].Type; got != want {
		return dst, fmt.Errorf("gio: column %q holds %v, asked for %v", name, got, want)
	}
	raw, err := r.readBlock(rank, vi)
	if err != nil {
		return dst, err
	}
	switch d := any(&dst).(type) {
	case *[]float32:
		for i := 0; i+4 <= len(raw); i += 4 {
			*d = append(*d, math.Float32frombits(binary.LittleEndian.Uint32(raw[i:])))
		}
	case *[]float64:
		for i := 0; i+8 <= len(raw); i += 8 {
			*d = append(*d, math.Float64frombits(binary.LittleEndian.Uint64(raw[i:])))
		}
	case *[]int64:
		for i := 0; i+8 <= len(raw); i += 8 {
			*d = append(*d, int64(binary.LittleEndian.Uint64(raw[i:])))
		}
	case *[]uint64:
		for i := 0; i+8 <= len(raw); i += 8 {
			*d = append(*d, binary.LittleEndian.Uint64(raw[i:]))
		}
	}
	return dst, nil
}
