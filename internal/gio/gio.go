package gio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Container format constants. The on-disk layout is, in order:
//
//	header     48 bytes (magic, version, counts, data start, file size, CRC)
//	var table  NVars × 32 bytes (name, type code, element size)
//	meta blob  MetaLen bytes (caller-owned run metadata, rank 0's copy)
//	rank table NRanks × 8·(1+NVars) bytes (data offset, per-column rows)
//	data       per rank, columns in table order: payload ‖ CRC32-C footer
//
// Everything before the data region is the index; it carries its own
// CRC32-C so a corrupt or truncated file is rejected before any
// header-declared size is trusted. Rank r's data begins at the offset
// recorded in its rank-table entry, so reading one rank's columns is an
// O(1) seek, independent of the container's total size.
const (
	// Version of the container layout.
	Version = 1

	headerSize    = 48
	varEntrySize  = 32
	nameSize      = 24
	crcFooterSize = 4

	// maxVars and maxRanks bound what an untrusted header can make the
	// reader allocate before the index CRC has been verified.
	maxVars  = 1 << 12
	maxRanks = 1 << 22

	// chunkBytes sizes the persistent conversion buffer the writers stream
	// columns through (encode + CRC + write per chunk, so no O(column)
	// buffer is ever allocated).
	chunkBytes = 1 << 18
)

// magic identifies a container file. Deliberately distinct from the legacy
// snapshot magic so v1 files fail with a clear migration error.
var magic = [8]byte{'H', 'A', 'C', 'C', 'G', 'I', 'O', '1'}

// castagnoli is the CRC32-C polynomial table shared by index and block
// checksums (hardware-accelerated on all current platforms).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Type identifies a column element type.
type Type uint32

// Supported column element types.
const (
	Float32 Type = 1
	Float64 Type = 2
	Int64   Type = 3
	Uint64  Type = 4
)

// Size returns the on-disk size of one element, or 0 for an unknown type.
func (t Type) Size() int {
	switch t {
	case Float32:
		return 4
	case Float64, Int64, Uint64:
		return 8
	}
	return 0
}

func (t Type) String() string {
	switch t {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	case Int64:
		return "int64"
	case Uint64:
		return "uint64"
	}
	return fmt.Sprintf("type(%d)", uint32(t))
}

// Var is one named column of the calling rank's records. Exactly the data
// field matching Type must be set (an empty non-nil slice declares a
// zero-row column); the writer reads the slice in place, so no copy of the
// column is ever made. Different columns of one rank may have different
// lengths — particle coordinates and a per-rank counter block can share a
// container.
type Var struct {
	Name string
	Type Type
	F32  []float32
	F64  []float64
	I64  []int64
	U64  []uint64
}

// rows returns the column length for the declared type.
func (v *Var) rows() int {
	switch v.Type {
	case Float32:
		return len(v.F32)
	case Float64:
		return len(v.F64)
	case Int64:
		return len(v.I64)
	case Uint64:
		return len(v.U64)
	}
	return 0
}

// validateVars checks a writer's column declarations: known types, short
// non-empty unique names, and no data field set that contradicts Type.
func validateVars(vars []Var) error {
	if len(vars) == 0 {
		return fmt.Errorf("gio: a container needs at least one column")
	}
	if len(vars) > maxVars {
		return fmt.Errorf("gio: %d columns exceed the limit %d", len(vars), maxVars)
	}
	for i := range vars {
		v := &vars[i]
		if v.Type.Size() == 0 {
			return fmt.Errorf("gio: column %q has unknown type %d", v.Name, v.Type)
		}
		if v.Name == "" || len(v.Name) > nameSize {
			return fmt.Errorf("gio: column name %q must be 1–%d bytes", v.Name, nameSize)
		}
		for _, b := range []byte(v.Name) {
			if b == 0 {
				return fmt.Errorf("gio: column name %q contains a NUL byte", v.Name)
			}
		}
		set := 0
		if v.F32 != nil {
			set++
			if v.Type != Float32 {
				return fmt.Errorf("gio: column %q declares %v but sets F32", v.Name, v.Type)
			}
		}
		if v.F64 != nil {
			set++
			if v.Type != Float64 {
				return fmt.Errorf("gio: column %q declares %v but sets F64", v.Name, v.Type)
			}
		}
		if v.I64 != nil {
			set++
			if v.Type != Int64 {
				return fmt.Errorf("gio: column %q declares %v but sets I64", v.Name, v.Type)
			}
		}
		if v.U64 != nil {
			set++
			if v.Type != Uint64 {
				return fmt.Errorf("gio: column %q declares %v but sets U64", v.Name, v.Type)
			}
		}
		if set > 1 {
			return fmt.Errorf("gio: column %q sets %d data fields, want exactly the %v one", v.Name, set, v.Type)
		}
		for j := 0; j < i; j++ {
			if vars[j].Name == v.Name {
				return fmt.Errorf("gio: duplicate column name %q", v.Name)
			}
		}
	}
	return nil
}

// schemaHash fingerprints the declared column set (names and types, in
// order) so collective writers can verify every rank declares the same
// schema. FNV-1a.
func schemaHash(vars []Var) uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) { h = (h ^ uint64(b)) * 1099511628211 }
	for i := range vars {
		for _, b := range []byte(vars[i].Name) {
			mix(b)
		}
		mix(0)
		mix(byte(vars[i].Type))
	}
	return h
}

// indexSize returns the byte count of the index region (everything before
// the first data block).
func indexSize(nvars, nranks, metaLen int) int64 {
	return headerSize + int64(nvars)*varEntrySize + int64(metaLen) +
		int64(nranks)*8*int64(1+nvars)
}

// blockSize returns the on-disk size of one column block (payload + CRC
// footer).
func blockSize(rows uint64, elemSize int) uint64 {
	return rows*uint64(elemSize) + crcFooterSize
}

// encodeRange converts elements [lo,hi) of v into dst (little-endian) and
// returns the bytes written. dst must have room for (hi-lo) elements.
func encodeRange(v *Var, lo, hi int, dst []byte) int {
	switch v.Type {
	case Float32:
		for i := lo; i < hi; i++ {
			binary.LittleEndian.PutUint32(dst[(i-lo)*4:], math.Float32bits(v.F32[i]))
		}
		return (hi - lo) * 4
	case Float64:
		for i := lo; i < hi; i++ {
			binary.LittleEndian.PutUint64(dst[(i-lo)*8:], math.Float64bits(v.F64[i]))
		}
	case Int64:
		for i := lo; i < hi; i++ {
			binary.LittleEndian.PutUint64(dst[(i-lo)*8:], uint64(v.I64[i]))
		}
	case Uint64:
		for i := lo; i < hi; i++ {
			binary.LittleEndian.PutUint64(dst[(i-lo)*8:], v.U64[i])
		}
	}
	return (hi - lo) * 8
}
