package gio

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

// container builds a healthy in-memory container for corruption tests.
func container(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTo(&buf, []byte("meta"), testVars(32, 7)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openBytes(b []byte) (*Reader, error) {
	return NewReader(bytes.NewReader(b), int64(len(b)))
}

// expectErr asserts err is non-nil and mentions want (the descriptive-error
// contract: no panics, and the message names the failure).
func expectErr(t *testing.T, err error, want string) {
	t.Helper()
	if err == nil {
		t.Fatalf("no error, want one mentioning %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestTruncatedContainer(t *testing.T) {
	b := container(t)
	for _, n := range []int{0, 4, headerSize - 1, headerSize + 10, len(b) / 2, len(b) - 1} {
		if _, err := openBytes(b[:n]); err == nil {
			t.Errorf("accepted container truncated to %d of %d bytes", n, len(b))
		}
	}
	_, err := openBytes(b[:len(b)-1])
	expectErr(t, err, "truncated")
}

func TestWrongMagic(t *testing.T) {
	b := container(t)
	b[0] ^= 0xff
	_, err := openBytes(b)
	expectErr(t, err, "bad magic")
}

func TestVersionMismatch(t *testing.T) {
	b := container(t)
	binary.LittleEndian.PutUint32(b[8:], Version+1)
	_, err := openBytes(b)
	expectErr(t, err, "unsupported container version")
}

func TestIndexCorruption(t *testing.T) {
	b := container(t)
	// Flip one byte inside the var table (past the header, before data).
	b[headerSize+3] ^= 0x40
	_, err := openBytes(b)
	expectErr(t, err, "index CRC mismatch")
}

func TestDataCRCFlip(t *testing.T) {
	b := container(t)
	r, err := openBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := r.blockAt(0, 0)
	b[off] ^= 0x01 // first payload byte of column "x"
	r2, err := openBytes(b)
	if err != nil {
		t.Fatal(err) // index is intact; only the block read must fail
	}
	_, err = ReadColumn[float32](r2, 0, "x", nil)
	expectErr(t, err, "CRC mismatch")
	// Other columns stay readable: corruption is isolated per block.
	if _, err := ReadColumn[uint64](r2, 0, "id", nil); err != nil {
		t.Fatalf("intact column unreadable: %v", err)
	}
}

// TestInflatedRowCount hand-corrupts the rank table to claim more rows than
// the container holds (re-sealing the index CRC so only the structural
// check can catch it) and expects a loud failure instead of over-allocation.
func TestInflatedRowCount(t *testing.T) {
	b := container(t)
	r, err := openBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	nvars := len(r.Vars())
	dataStart := indexSize(nvars, 1, len(r.Meta()))
	// Rank table entry 0: offset, then the first column's row count.
	rowsOff := dataStart - int64(8*(1+nvars)) + 8
	binary.LittleEndian.PutUint64(b[rowsOff:], 1<<50)
	// Re-seal the index CRC so the corruption looks internally consistent.
	binary.LittleEndian.PutUint32(b[40:], 0)
	crc := crc32.Checksum(b[:dataStart], castagnoli)
	binary.LittleEndian.PutUint32(b[40:], crc)
	_, err = openBytes(b)
	expectErr(t, err, "corrupt rank table")
}

func TestHeaderSizeLies(t *testing.T) {
	b := container(t)
	// Declared file size larger than reality → truncation error.
	binary.LittleEndian.PutUint64(b[32:], uint64(len(b)+100))
	binary.LittleEndian.PutUint32(b[40:], 0)
	dataStart := binary.LittleEndian.Uint64(b[24:])
	crc := crc32.Checksum(b[:dataStart], castagnoli)
	binary.LittleEndian.PutUint32(b[40:], crc)
	_, err := openBytes(b)
	expectErr(t, err, "truncated")
}

func TestGarbageInput(t *testing.T) {
	if _, err := openBytes([]byte("not a container at all, just text")); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := openBytes(nil); err == nil {
		t.Error("accepted empty input")
	}
	if _, err := ReadIndexOnly(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("ReadIndexOnly accepted garbage")
	}
}
