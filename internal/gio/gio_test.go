package gio

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hacc/internal/mpi"
)

// testVars builds a deterministic multi-type column set with n records in
// the particle-like columns and a short odd-length counter column.
func testVars(n int, seed uint64) []Var {
	f32 := make([]float32, n)
	f64 := make([]float64, n)
	u64 := make([]uint64, n)
	for i := 0; i < n; i++ {
		f32[i] = float32(seed)*0.5 + float32(i)*1.25
		f64[i] = float64(seed) + float64(i)/7
		u64[i] = seed*1e6 + uint64(i)
	}
	return []Var{
		{Name: "x", Type: Float32, F32: f32},
		{Name: "phi", Type: Float64, F64: f64},
		{Name: "id", Type: Uint64, U64: u64},
		{Name: "counters", Type: Int64, I64: []int64{int64(seed), -7, 1 << 40}},
	}
}

func checkVars(t *testing.T, r *Reader, rank int, want []Var) {
	t.Helper()
	for i := range want {
		v := &want[i]
		rows, err := r.Rows(rank, v.Name)
		if err != nil {
			t.Fatalf("Rows(%d,%q): %v", rank, v.Name, err)
		}
		if int(rows) != v.rows() {
			t.Fatalf("rank %d column %q: %d rows, want %d", rank, v.Name, rows, v.rows())
		}
		switch v.Type {
		case Float32:
			got, err := ReadColumn[float32](r, rank, v.Name, nil)
			if err != nil {
				t.Fatal(err)
			}
			for j := range got {
				if math.Float32bits(got[j]) != math.Float32bits(v.F32[j]) {
					t.Fatalf("rank %d %q[%d] = %v want %v", rank, v.Name, j, got[j], v.F32[j])
				}
			}
		case Float64:
			got, err := ReadColumn[float64](r, rank, v.Name, nil)
			if err != nil {
				t.Fatal(err)
			}
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(v.F64[j]) {
					t.Fatalf("rank %d %q[%d] = %v want %v", rank, v.Name, j, got[j], v.F64[j])
				}
			}
		case Int64:
			got, err := ReadColumn[int64](r, rank, v.Name, nil)
			if err != nil {
				t.Fatal(err)
			}
			for j := range got {
				if got[j] != v.I64[j] {
					t.Fatalf("rank %d %q[%d] = %v want %v", rank, v.Name, j, got[j], v.I64[j])
				}
			}
		case Uint64:
			got, err := ReadColumn[uint64](r, rank, v.Name, nil)
			if err != nil {
				t.Fatal(err)
			}
			for j := range got {
				if got[j] != v.U64[j] {
					t.Fatalf("rank %d %q[%d] = %v want %v", rank, v.Name, j, got[j], v.U64[j])
				}
			}
		}
	}
}

func TestSerialRoundTrip(t *testing.T) {
	vars := testVars(137, 3)
	meta := []byte("run-state blob \x00 with binary bytes")
	var buf bytes.Buffer
	if err := WriteTo(&buf, meta, vars); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRanks() != 1 {
		t.Fatalf("NumRanks = %d", r.NumRanks())
	}
	if !bytes.Equal(r.Meta(), meta) {
		t.Fatalf("meta mismatch: %q", r.Meta())
	}
	if got := len(r.Vars()); got != len(vars) {
		t.Fatalf("vars = %d want %d", got, len(vars))
	}
	checkVars(t, r, 0, vars)
}

func TestEmptyColumnsRoundTrip(t *testing.T) {
	vars := []Var{
		{Name: "x", Type: Float32, F32: []float32{}},
		{Name: "id", Type: Uint64, U64: []uint64{}},
	}
	var buf bytes.Buffer
	if err := WriteTo(&buf, nil, vars); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadColumn[float32](r, 0, "x", nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty column: %v, %d rows", err, len(got))
	}
}

func TestReadIndexOnly(t *testing.T) {
	vars := testVars(55, 9)
	meta := []byte("hdr")
	var buf bytes.Buffer
	if err := WriteTo(&buf, meta, vars); err != nil {
		t.Fatal(err)
	}
	ix, err := ReadIndexOnly(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ix.Meta(), meta) || ix.NumRanks() != 1 {
		t.Fatalf("index: meta %q ranks %d", ix.Meta(), ix.NumRanks())
	}
	if rows, _ := ix.Rows(0, "x"); rows != 55 {
		t.Fatalf("rows = %d", rows)
	}
}

func TestParallelRoundTrip(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		p := p
		t.Run(fmt.Sprintf("ranks=%d", p), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "par.gio")
			err := mpi.Run(p, func(c *mpi.Comm) {
				w := NewWriter(c)
				var meta []byte
				if c.Rank() == 0 {
					meta = []byte("collective meta")
				}
				// Per-rank row counts differ (rank r has 10+3r records).
				if err := w.Write(path, meta, testVars(10+3*c.Rank(), uint64(c.Rank()))); err != nil {
					panic(err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			r, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if r.NumRanks() != p {
				t.Fatalf("NumRanks = %d want %d", r.NumRanks(), p)
			}
			if string(r.Meta()) != "collective meta" {
				t.Fatalf("meta %q", r.Meta())
			}
			for rank := 0; rank < p; rank++ {
				checkVars(t, r, rank, testVars(10+3*rank, uint64(rank)))
			}
			if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
				t.Fatalf("temporary file left behind: %v", err)
			}
		})
	}
}

// TestSerialMatchesParallelSingleRank pins the contract that WriteTo and a
// one-rank collective Write produce byte-identical containers.
func TestSerialMatchesParallelSingleRank(t *testing.T) {
	vars := testVars(64, 5)
	meta := []byte("m")
	var buf bytes.Buffer
	if err := WriteTo(&buf, meta, vars); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "one.gio")
	err := mpi.Run(1, func(c *mpi.Comm) {
		if err := NewWriter(c).Write(path, meta, vars); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, buf.Bytes()) {
		t.Fatalf("serial (%d bytes) and 1-rank collective (%d bytes) containers differ", buf.Len(), len(disk))
	}
}

// TestWriterReuse pins that a warm Writer produces correct containers on
// repeated collective writes (the checkpoint cadence path).
func TestWriterReuse(t *testing.T) {
	dir := t.TempDir()
	err := mpi.Run(4, func(c *mpi.Comm) {
		w := NewWriter(c)
		for it := 0; it < 3; it++ {
			path := filepath.Join(dir, fmt.Sprintf("it%d.gio", it))
			if err := w.Write(path, []byte{byte(it)}, testVars(20+it, uint64(c.Rank()+it))); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 3; it++ {
		r, err := Open(filepath.Join(dir, fmt.Sprintf("it%d.gio", it)))
		if err != nil {
			t.Fatal(err)
		}
		for rank := 0; rank < 4; rank++ {
			checkVars(t, r, rank, testVars(20+it, uint64(rank+it)))
		}
		r.Close()
	}
}

func TestInvalidVarsRejected(t *testing.T) {
	cases := []struct {
		name string
		vars []Var
	}{
		{"empty set", nil},
		{"unknown type", []Var{{Name: "x", Type: Type(99)}}},
		{"empty name", []Var{{Name: "", Type: Float32}}},
		{"long name", []Var{{Name: "xxxxxxxxxxxxxxxxxxxxxxxxx", Type: Float32}}},
		{"nul in name", []Var{{Name: "a\x00b", Type: Float32}}},
		{"duplicate name", []Var{{Name: "x", Type: Float32}, {Name: "x", Type: Float64}}},
		{"wrong field", []Var{{Name: "x", Type: Float32, F64: []float64{1}}}},
		{"two fields", []Var{{Name: "x", Type: Float32, F32: []float32{1}, U64: []uint64{1}}}},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := WriteTo(&buf, nil, tc.vars); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestSchemaMismatchAcrossRanks pins that a collective write where ranks
// declare different schemas fails consistently on every rank without
// touching the target path.
func TestSchemaMismatchAcrossRanks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gio")
	err := mpi.Run(2, func(c *mpi.Comm) {
		name := "x"
		if c.Rank() == 1 {
			name = "y"
		}
		err := NewWriter(c).Write(path, nil, []Var{{Name: name, Type: Float32, F32: []float32{1}}})
		if err == nil {
			panic("schema mismatch accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed write left a container behind: %v", err)
	}
}

// TestInvalidRankRejectedCollectively pins that one rank's invalid columns
// fail the whole collective write with an error on every rank.
func TestInvalidRankRejectedCollectively(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gio")
	errs := make([]error, 2)
	err := mpi.Run(2, func(c *mpi.Comm) {
		vars := []Var{{Name: "x", Type: Float32, F32: []float32{1}}}
		if c.Rank() == 1 {
			vars[0].Type = Type(42)
		}
		errs[c.Rank()] = NewWriter(c).Write(path, nil, vars)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, e := range errs {
		if e == nil {
			t.Errorf("rank %d accepted a collectively-invalid write", r)
		}
	}
}

func TestReadColumnTypeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTo(&buf, nil, testVars(4, 0)); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadColumn[float64](r, 0, "x", nil); err == nil {
		t.Error("float64 read of a float32 column accepted")
	}
	if _, err := ReadColumn[float32](r, 0, "nope", nil); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := ReadColumn[float32](r, 2, "x", nil); err == nil {
		t.Error("out-of-range rank accepted")
	}
}
