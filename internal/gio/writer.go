package gio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"hacc/internal/fault"
	"hacc/internal/mpi"
	"hacc/internal/obs"
)

// syncFile fsyncs a container file, reporting to an armed fault injector
// first so plans like "fail every 5th fsync" exercise the durability paths.
func syncFile(f *os.File, rank int) error {
	if inj := fault.Armed(); inj != nil {
		if err := inj.HitErr(fault.PointFsync, rank, -1); err != nil {
			return err
		}
	}
	return f.Sync()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := syncFile(d, -1)
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// hitWrite asks an armed injector whether this write chunk should fail. A
// Torn outcome writes the first half of the chunk before erroring — the
// partial-flush shape a real crash leaves behind — so CRC verification and
// quarantine paths see realistic damage.
func hitWrite(f *os.File, b []byte, off int64, rank int) error {
	inj := fault.Armed()
	if inj == nil {
		return nil
	}
	switch inj.Hit(fault.PointWrite, rank, -1) {
	case fault.Failed:
		return &fault.InjectedError{Point: fault.PointWrite, Rank: rank}
	case fault.TornWrite:
		f.WriteAt(b[:len(b)/2], off)
		return &fault.InjectedError{Point: fault.PointWrite, Rank: rank, Torn: true}
	}
	return nil
}

// appendIndex assembles the complete index region (header, var table, meta,
// rank table) for the given layout onto dst and returns it, with the index
// CRC computed and patched in. allRows holds nranks×nvars row counts in
// rank-major order.
func appendIndex(dst []byte, meta []byte, vars []Var, allRows []uint64, nranks int) []byte {
	base := len(dst)
	nv := len(vars)
	dataStart := uint64(indexSize(nv, nranks, len(meta)))
	fileSize := dataStart
	for r := 0; r < nranks; r++ {
		for v := 0; v < nv; v++ {
			fileSize += blockSize(allRows[r*nv+v], vars[v].Type.Size())
		}
	}

	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) { binary.LittleEndian.PutUint32(u32[:], v); dst = append(dst, u32[:]...) }
	put64 := func(v uint64) { binary.LittleEndian.PutUint64(u64[:], v); dst = append(dst, u64[:]...) }

	dst = append(dst, magic[:]...)
	put32(Version)
	put32(uint32(nranks))
	put32(uint32(nv))
	put32(uint32(len(meta)))
	put64(dataStart)
	put64(fileSize)
	put32(0) // index CRC, patched below
	put32(0) // reserved

	var name [nameSize]byte
	for i := range vars {
		copy(name[:], vars[i].Name)
		for k := len(vars[i].Name); k < nameSize; k++ {
			name[k] = 0
		}
		dst = append(dst, name[:]...)
		put32(uint32(vars[i].Type))
		put32(uint32(vars[i].Type.Size()))
	}
	dst = append(dst, meta...)
	off := dataStart
	for r := 0; r < nranks; r++ {
		put64(off)
		for v := 0; v < nv; v++ {
			rows := allRows[r*nv+v]
			put64(rows)
			off += blockSize(rows, vars[v].Type.Size())
		}
	}
	crc := crc32.Checksum(dst[base:], castagnoli)
	binary.LittleEndian.PutUint32(dst[base+40:], crc)
	return dst
}

// streamBlock encodes one column in chunks through buf — maintaining the
// running CRC32-C — and hands each chunk, then the 4-byte CRC footer, to
// emit. Both write paths (sequential WriteTo, collective writeBlocksAt)
// share it, which is what keeps their containers byte-identical by
// construction. buf's contents are clobbered; it must hold at least one
// element.
func streamBlock(v *Var, buf []byte, emit func([]byte) error) error {
	n := v.rows()
	per := len(buf) / v.Type.Size()
	crc := uint32(0)
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		k := encodeRange(v, lo, hi, buf)
		crc = crc32.Update(crc, castagnoli, buf[:k])
		if err := emit(buf[:k]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(buf[:crcFooterSize], crc)
	return emit(buf[:crcFooterSize])
}

// WriteTo writes a single-rank container to a sequential stream. The output
// is byte-identical to what Writer.Write produces on a one-rank
// communicator, so single-file products (per-rank snapshots, catalogs,
// spectra) and collective checkpoints share one on-disk layout.
func WriteTo(w io.Writer, meta []byte, vars []Var) error {
	// Single-rank products have no communicator; their spans land on rank 0's
	// timeline, which is where the lone writer of such files runs in practice.
	t0 := obs.Begin()
	defer func() { obs.End(0, obs.SpanGioWrite, t0) }()
	if err := validateVars(vars); err != nil {
		return err
	}
	rows := make([]uint64, len(vars))
	for i := range vars {
		rows[i] = uint64(vars[i].rows())
	}
	if _, err := w.Write(appendIndex(nil, meta, vars, rows, 1)); err != nil {
		return fmt.Errorf("gio: writing container index: %w", err)
	}
	buf := make([]byte, chunkBytes)
	for i := range vars {
		v := &vars[i]
		err := streamBlock(v, buf, func(b []byte) error {
			if inj := fault.Armed(); inj != nil {
				if err := inj.HitErr(fault.PointWrite, -1, -1); err != nil {
					return fmt.Errorf("gio: writing column %q: %w", v.Name, err)
				}
			}
			if _, err := w.Write(b); err != nil {
				return fmt.Errorf("gio: writing column %q: %w", v.Name, err)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Writer writes containers collectively: every rank of the communicator
// contributes its own column blocks to one logical file. The rank-offset
// index is computed from an AllGather of per-rank row counts, so all ranks
// write disjoint regions concurrently (each through its own descriptor,
// as with MPI-IO) and a reader seeks to any rank's data in O(1).
//
// All scratch (conversion chunks, row tables, the rank-0 index image) is
// Writer-owned and reused, so a warm Write allocates nothing beyond the
// file descriptors and the small collective index exchange. One Writer
// belongs to one rank; Write is collective and must be called by every
// rank with the same path and column schema.
type Writer struct {
	c     *mpi.Comm
	buf   []byte   // chunk conversion buffer
	rows  []uint64 // local per-column row counts
	index []byte   // rank-0 index assembly buffer
}

// NewWriter creates a collective container writer for this rank.
func NewWriter(c *mpi.Comm) *Writer { return &Writer{c: c} }

// Write writes one container collectively. meta is taken from rank 0 (other
// ranks may pass nil); vars must declare the same columns in the same order
// on every rank, each holding the local rank's rows. The container is
// assembled under a temporary name and atomically renamed into place once
// every rank's blocks (and their CRC footers) are on disk, so a crash
// mid-write never leaves a half-written file under the final path.
func (w *Writer) Write(path string, meta []byte, vars []Var) error {
	c := w.c
	p := c.Size()
	me := c.Rank()
	nv := len(vars)
	t0 := obs.Begin()
	defer func() { obs.End(me, obs.SpanGioWrite, t0) }()

	// Collective agreement: every rank's columns must validate locally and
	// hash to the same schema before anyone touches the filesystem.
	verr := validateVars(vars)
	probe := [2]uint64{0, 0}
	if verr == nil {
		probe = [2]uint64{1, schemaHash(vars)}
	}
	agree := mpi.AllGather(c, probe[:])
	for r := 0; r < p; r++ {
		if agree[2*r] == 0 {
			if verr != nil {
				return fmt.Errorf("gio: writing %s: %w", path, verr)
			}
			return fmt.Errorf("gio: writing %s: invalid columns on rank %d", path, r)
		}
	}
	for r := 1; r < p; r++ {
		if agree[2*r+1] != agree[1] {
			return fmt.Errorf("gio: writing %s: ranks declare different column schemas", path)
		}
	}
	meta = mpi.Bcast(c, 0, meta)

	// Collective index: gather everyone's row counts, then compute the
	// identical layout on all ranks.
	if cap(w.rows) < nv {
		w.rows = make([]uint64, nv)
	}
	w.rows = w.rows[:nv]
	for i := range vars {
		w.rows[i] = uint64(vars[i].rows())
	}
	allRows := mpi.AllGather(c, w.rows)
	dataStart := uint64(indexSize(nv, p, len(meta)))
	off := dataStart
	myOff := off
	for r := 0; r < p; r++ {
		if r == me {
			myOff = off
		}
		for v := 0; v < nv; v++ {
			off += blockSize(allRows[r*nv+v], vars[v].Type.Size())
		}
	}
	fileSize := off

	// Rank 0 lays down the index (and reserves the full extent); everyone
	// waits for the file to exist before opening it.
	tmp := path + ".tmp"
	var ierr error
	if me == 0 {
		if ierr = w.writeIndex(tmp, meta, vars, allRows, int64(fileSize)); ierr != nil {
			os.Remove(tmp)
		}
	}
	if !mpi.AllOK(c, ierr == nil) {
		if ierr != nil {
			return fmt.Errorf("gio: writing %s: %w", path, ierr)
		}
		return fmt.Errorf("gio: writing %s: index write failed on rank 0", path)
	}

	// Every rank streams its blocks into its disjoint region.
	derr := w.writeBlocksAt(tmp, vars, int64(myOff))
	if !mpi.AllOK(c, derr == nil) {
		if me == 0 {
			os.Remove(tmp)
		}
		if derr != nil {
			return fmt.Errorf("gio: writing %s: %w", path, derr)
		}
		return fmt.Errorf("gio: writing %s: block write failed on another rank", path)
	}

	// All blocks are synced under tmp: publish atomically, and sync the
	// directory so the rename itself survives a crash.
	var rerr error
	if me == 0 {
		if rerr = os.Rename(tmp, path); rerr != nil {
			os.Remove(tmp)
		} else {
			rerr = syncDir(filepath.Dir(path))
		}
	}
	if !mpi.AllOK(c, rerr == nil) {
		if rerr != nil {
			return fmt.Errorf("gio: writing %s: %w", path, rerr)
		}
		return fmt.Errorf("gio: writing %s: rename failed on rank 0", path)
	}
	return nil
}

// writeIndex creates the temporary container, writes the assembled index,
// and extends the file to its final size.
func (w *Writer) writeIndex(tmp string, meta []byte, vars []Var, allRows []uint64, fileSize int64) error {
	w.index = appendIndex(w.index[:0], meta, vars, allRows, w.c.Size())
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(w.index); err != nil {
		f.Close()
		return err
	}
	if err := f.Truncate(fileSize); err != nil {
		f.Close()
		return err
	}
	if err := syncFile(f, w.c.Rank()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeBlocksAt opens the container and streams this rank's column blocks
// (payload + CRC footer each) starting at off.
func (w *Writer) writeBlocksAt(tmp string, vars []Var, off int64) error {
	f, err := os.OpenFile(tmp, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if w.buf == nil {
		w.buf = make([]byte, chunkBytes)
	}
	me := w.c.Rank()
	for i := range vars {
		v := &vars[i]
		err := streamBlock(v, w.buf, func(b []byte) error {
			if err := hitWrite(f, b, off, me); err != nil {
				return fmt.Errorf("writing column %q: %w", v.Name, err)
			}
			if _, err := f.WriteAt(b, off); err != nil {
				return fmt.Errorf("writing column %q: %w", v.Name, err)
			}
			off += int64(len(b))
			return nil
		})
		if err != nil {
			f.Close()
			return err
		}
	}
	// Data pages must be on disk before the collective agrees to publish
	// the container under its final (restorable) name — rename is metadata
	// and can otherwise reach disk first across a crash.
	if err := syncFile(f, me); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
