package fft

import (
	"fmt"
	"math"
	"sync"
)

// maxSmallFactor is the largest prime handled by the generic O(f²) butterfly;
// larger factors fall through to Bluestein.
const maxSmallFactor = 31

// Plan holds precomputed twiddle factors and the factorization of n.
type Plan struct {
	n       int
	factors []int        // small factors in recursion order; product*blue == n
	tw      []complex128 // tw[k] = exp(-2πi k/n)
	blue    *bluestein   // non-nil when a cofactor > maxSmallFactor remains
	maxF    int          // largest small factor (scratch sizing)
	scratch sync.Pool

	halfOnce sync.Once
	halfPlan *Plan // length-n/2 plan backing the real transforms (even n)
}

// NewPlan creates a plan for transforms of length n.
func NewPlan(n int) *Plan {
	if n <= 0 {
		panic(fmt.Sprintf("fft: invalid length %d", n))
	}
	p := &Plan{n: n}
	// Factor n: prefer radix 4, then 2, 3, 5, 7, then remaining primes.
	rem := n
	for rem%4 == 0 {
		p.factors = append(p.factors, 4)
		rem /= 4
	}
	for _, f := range []int{2, 3, 5, 7} {
		for rem%f == 0 {
			p.factors = append(p.factors, f)
			rem /= f
		}
	}
	for f := 11; f*f <= rem && f <= maxSmallFactor; f += 2 {
		for rem%f == 0 {
			p.factors = append(p.factors, f)
			rem /= f
		}
	}
	if rem > 1 && rem <= maxSmallFactor {
		p.factors = append(p.factors, rem)
		rem = 1
	}
	if rem > 1 {
		// The remaining cofactor (a large prime or product of large primes)
		// is transformed with Bluestein's algorithm at the recursion leaf.
		p.blue = newBluestein(rem)
	}
	p.maxF = 1
	for _, f := range p.factors {
		if f > p.maxF {
			p.maxF = f
		}
	}
	p.tw = make([]complex128, n)
	for k := 0; k < n; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.tw[k] = complex(c, s)
	}
	p.scratch.New = func() any {
		buf := make([]complex128, n+p.maxF)
		return &buf
	}
	return p
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place forward DFT: X[k] = Σ_j x[j]·exp(-2πi jk/n).
func (p *Plan) Forward(data []complex128) {
	p.check(data)
	bufp := p.scratch.Get().(*[]complex128)
	buf := *bufp
	p.rec(buf[:p.n], data, p.n, 1, 1, p.factors, buf[p.n:])
	copy(data, buf[:p.n])
	p.scratch.Put(bufp)
}

// Inverse computes the in-place inverse DFT, scaled by 1/n, so that
// Inverse(Forward(x)) == x.
func (p *Plan) Inverse(data []complex128) {
	p.check(data)
	for i, v := range data {
		data[i] = complex(real(v), -imag(v))
	}
	p.Forward(data)
	inv := 1 / float64(p.n)
	for i, v := range data {
		data[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

// ForwardBatch applies the forward transform to rows contiguous rows of
// length n stored back to back in data.
func (p *Plan) ForwardBatch(data []complex128, rows int) {
	if len(data) != rows*p.n {
		panic(fmt.Sprintf("fft: batch length %d != %d rows × %d", len(data), rows, p.n))
	}
	for r := 0; r < rows; r++ {
		p.Forward(data[r*p.n : (r+1)*p.n])
	}
}

// InverseBatch applies the inverse transform to contiguous rows.
func (p *Plan) InverseBatch(data []complex128, rows int) {
	if len(data) != rows*p.n {
		panic(fmt.Sprintf("fft: batch length %d != %d rows × %d", len(data), rows, p.n))
	}
	for r := 0; r < rows; r++ {
		p.Inverse(data[r*p.n : (r+1)*p.n])
	}
}

func (p *Plan) check(data []complex128) {
	if len(data) != p.n {
		panic(fmt.Sprintf("fft: data length %d != plan length %d", len(data), p.n))
	}
}

// rec computes the DFT of the strided sequence src[0], src[s], … (length n)
// into the contiguous dst. tmul relates this level's twiddles to the global
// table: ω_n^k = tw[(k·tmul) mod N]. tmp provides maxF scratch entries.
func (p *Plan) rec(dst, src []complex128, n, s, tmul int, factors []int, tmp []complex128) {
	if n == 1 {
		dst[0] = src[0]
		return
	}
	if len(factors) == 0 {
		// Large-prime cofactor: gather the strided input and run Bluestein.
		for j := 0; j < n; j++ {
			dst[j] = src[j*s]
		}
		p.blue.transform(dst)
		return
	}
	f := factors[0]
	m := n / f
	for j := 0; j < f; j++ {
		p.rec(dst[j*m:(j+1)*m], src[j*s:], m, s*f, tmul*f, factors[1:], tmp)
	}
	N := p.n
	tw := p.tw
	switch f {
	case 2:
		for k1 := 0; k1 < m; k1++ {
			t0 := dst[k1]
			t1 := dst[m+k1] * tw[(k1*tmul)%N]
			dst[k1] = t0 + t1
			dst[m+k1] = t0 - t1
		}
	case 4:
		for k1 := 0; k1 < m; k1++ {
			w1 := tw[(k1*tmul)%N]
			w2 := tw[(2*k1*tmul)%N]
			w3 := tw[(3*k1*tmul)%N]
			t0 := dst[k1]
			t1 := dst[m+k1] * w1
			t2 := dst[2*m+k1] * w2
			t3 := dst[3*m+k1] * w3
			a := t0 + t2
			b := t0 - t2
			cc := t1 + t3
			d := t1 - t3
			// -i*d and +i*d spelled out.
			id := complex(imag(d), -real(d))
			dst[k1] = a + cc
			dst[m+k1] = b + id
			dst[2*m+k1] = a - cc
			dst[3*m+k1] = b - id
		}
	case 3:
		// ω_3 = -1/2 - i√3/2
		const half = 0.5
		sq := math.Sqrt(3) / 2
		for k1 := 0; k1 < m; k1++ {
			t0 := dst[k1]
			t1 := dst[m+k1] * tw[(k1*tmul)%N]
			t2 := dst[2*m+k1] * tw[(2*k1*tmul)%N]
			sum := t1 + t2
			diff := t1 - t2
			// X1 = t0 + ω t1 + ω² t2, X2 = t0 + ω² t1 + ω t2
			re := complex(-half*real(sum), -half*imag(sum))
			im := complex(sq*imag(diff), -sq*real(diff))
			dst[k1] = t0 + sum
			dst[m+k1] = t0 + re + im
			dst[2*m+k1] = t0 + re - im
		}
	default:
		for k1 := 0; k1 < m; k1++ {
			for j := 0; j < f; j++ {
				tmp[j] = dst[j*m+k1] * tw[(j*k1*tmul)%N]
			}
			wstep := m * tmul // ω_f = ω_n^{m}
			for k2 := 0; k2 < f; k2++ {
				sum := tmp[0]
				for j := 1; j < f; j++ {
					sum += tmp[j] * tw[(j*k2*wstep)%N]
				}
				dst[k2*m+k1] = sum
			}
		}
	}
}
