package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// refHalfSpectrum computes the first n/2+1 modes through the complex path.
func refHalfSpectrum(src []float64) []complex128 {
	n := len(src)
	full := make([]complex128, n)
	for i, v := range src {
		full[i] = complex(v, 0)
	}
	NewPlan(n).Forward(full)
	return full[:n/2+1]
}

func randReal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// realTestLengths covers the even fast path (powers of two, mixed radix),
// odd lengths, primes (Bluestein), and the trivial sizes.
var realTestLengths = []int{1, 2, 4, 6, 8, 12, 16, 24, 27, 30, 31, 37, 64, 100}

func TestForwardRealMatchesComplex(t *testing.T) {
	for _, n := range realTestLengths {
		p := NewPlan(n)
		src := randReal(n, int64(n))
		dst := make([]complex128, p.HalfLen())
		p.ForwardReal(dst, src)
		want := refHalfSpectrum(src)
		var scale float64
		for _, v := range want {
			if a := cmplx.Abs(v); a > scale {
				scale = a
			}
		}
		for k := range want {
			if cmplx.Abs(dst[k]-want[k]) > 1e-12*scale {
				t.Errorf("n=%d k=%d: r2c %v != complex %v", n, k, dst[k], want[k])
			}
		}
		// Endpoint modes of a real signal are purely real — exactly so on
		// the even fast path (constructed real); the odd fallback runs a
		// full complex transform and may leave roundoff in the imaginary
		// part, which the relative check above already bounds.
		if n%2 == 0 && n > 1 {
			if imag(dst[0]) != 0 {
				t.Errorf("n=%d: DC mode has imaginary part %g", n, imag(dst[0]))
			}
			if imag(dst[n/2]) != 0 {
				t.Errorf("n=%d: Nyquist mode has imaginary part %g", n, imag(dst[n/2]))
			}
		}
	}
}

func TestInverseRealRoundTrip(t *testing.T) {
	for _, n := range realTestLengths {
		p := NewPlan(n)
		src := randReal(n, 100+int64(n))
		spec := make([]complex128, p.HalfLen())
		p.ForwardReal(spec, src)
		specCopy := append([]complex128(nil), spec...)
		back := make([]float64, n)
		p.InverseReal(back, spec)
		var scale float64
		for _, v := range src {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for j := range src {
			d := back[j] - src[j]
			if d < 0 {
				d = -d
			}
			if d > 1e-12*(scale+1) {
				t.Errorf("n=%d j=%d: round trip %g != %g", n, j, back[j], src[j])
			}
		}
		// Inputs must be preserved (the pencil pipeline relies on it).
		for k := range spec {
			if spec[k] != specCopy[k] {
				t.Errorf("n=%d: InverseReal clobbered its input at %d", n, k)
			}
		}
	}
}

func TestRealBatch(t *testing.T) {
	const n, rows = 12, 5
	p := NewPlan(n)
	nh := p.HalfLen()
	src := randReal(n*rows, 9)
	dst := make([]complex128, nh*rows)
	p.ForwardRealBatch(dst, src, rows)
	for r := 0; r < rows; r++ {
		want := make([]complex128, nh)
		p.ForwardReal(want, src[r*n:(r+1)*n])
		for k := 0; k < nh; k++ {
			if dst[r*nh+k] != want[k] {
				t.Fatalf("row %d mode %d: batch %v != single %v", r, k, dst[r*nh+k], want[k])
			}
		}
	}
	back := make([]float64, n*rows)
	p.InverseRealBatch(back, dst, rows)
	for j := range src {
		d := back[j] - src[j]
		if d < 0 {
			d = -d
		}
		if d > 1e-12 {
			t.Fatalf("batch round trip mismatch at %d: %g != %g", j, back[j], src[j])
		}
	}
}

func TestHalfLen(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 2, 8: 5, 9: 5, 16: 9} {
		if got := NewPlan(n).HalfLen(); got != want {
			t.Errorf("HalfLen(%d)=%d want %d", n, got, want)
		}
	}
}
