package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			sum += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

func randomVec(n int, rng *rand.Rand) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Cover radix 2/3/4/5/7 mixes, generic small primes, and Bluestein
	// (41, 97, 2·61) plus the per-rank sizes used by the pencil FFT.
	sizes := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 20, 25, 27, 30,
		32, 36, 48, 60, 64, 81, 100, 101, 121, 128, 160, 169, 192, 200, 41, 97, 122, 363}
	for _, n := range sizes {
		x := randomVec(n, rng)
		want := naiveDFT(x)
		p := NewPlan(n)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		tol := 1e-9 * float64(n)
		if d := maxDiff(got, want); d > tol {
			t.Errorf("n=%d: max diff %g > %g", n, d, tol)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 8, 12, 45, 64, 97, 120, 128, 160, 210, 256} {
		x := randomVec(n, rng)
		p := NewPlan(n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		tol := 1e-10 * float64(n)
		if d := maxDiff(x, y); d > tol {
			t.Errorf("n=%d round trip diff %g", n, d)
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	// Parseval: Σ|x|² = (1/n)Σ|X|² for random vectors of random length.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		x := randomVec(n, rng)
		var sx float64
		for _, v := range x {
			sx += real(v)*real(v) + imag(v)*imag(v)
		}
		p := NewPlan(n)
		p.Forward(x)
		var sX float64
		for _, v := range x {
			sX += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(sx-sX/float64(n)) < 1e-8*(1+sx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	// FFT(a·x + y) == a·FFT(x) + FFT(y).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		x := randomVec(n, rng)
		y := randomVec(n, rng)
		p := NewPlan(n)
		comb := make([]complex128, n)
		for i := range comb {
			comb[i] = a*x[i] + y[i]
		}
		p.Forward(comb)
		p.Forward(x)
		p.Forward(y)
		for i := range comb {
			if cmplx.Abs(comb[i]-(a*x[i]+y[i])) > 1e-8*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestImpulseAndConstant(t *testing.T) {
	n := 24
	p := NewPlan(n)
	// Impulse at 0 -> all ones.
	x := make([]complex128, n)
	x[0] = 1
	p.Forward(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse: X[%d]=%v", k, v)
		}
	}
	// Constant -> impulse of height n at k=0.
	for i := range x {
		x[i] = 2
	}
	p.Forward(x)
	if cmplx.Abs(x[0]-complex(2*float64(n), 0)) > 1e-10 {
		t.Errorf("constant: X[0]=%v", x[0])
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(x[k]) > 1e-10 {
			t.Errorf("constant: X[%d]=%v", k, x[k])
		}
	}
}

func TestSingleModeFrequency(t *testing.T) {
	// x[j] = exp(2πi·5j/n) must transform to an impulse at k=5 (forward
	// convention has the minus sign in the exponent).
	n := 40
	x := make([]complex128, n)
	for j := range x {
		ang := 2 * math.Pi * 5 * float64(j) / float64(n)
		x[j] = cmplx.Exp(complex(0, ang))
	}
	NewPlan(n).Forward(x)
	for k := range x {
		want := 0.0
		if k == 5 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(x[k])-want) > 1e-9 {
			t.Errorf("mode test: |X[%d]|=%g want %g", k, cmplx.Abs(x[k]), want)
		}
	}
}

func TestBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, rows := 16, 5
	data := randomVec(n*rows, rng)
	want := make([]complex128, 0, n*rows)
	for r := 0; r < rows; r++ {
		want = append(want, naiveDFT(data[r*n:(r+1)*n])...)
	}
	p := NewPlan(n)
	p.ForwardBatch(data, rows)
	if d := maxDiff(data, want); d > 1e-10*float64(n) {
		t.Errorf("batch diff %g", d)
	}
	p.InverseBatch(data, rows)
	// After inverse, compare to naive forward-inverse (i.e., original).
}

func TestPlanConcurrentUse(t *testing.T) {
	p := NewPlan(128)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			x := randomVec(128, rng)
			orig := append([]complex128(nil), x...)
			for i := 0; i < 50; i++ {
				p.Forward(x)
				p.Inverse(x)
			}
			done <- maxDiff(x, orig) < 1e-8
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent round trips diverged")
		}
	}
}

func TestPlan3AgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n0, n1, n2 := 4, 6, 5
	data := randomVec(n0*n1*n2, rng)
	// Naive separable reference.
	want := append([]complex128(nil), data...)
	// axis 2
	for r := 0; r < n0*n1; r++ {
		copy(want[r*n2:(r+1)*n2], naiveDFT(want[r*n2:(r+1)*n2]))
	}
	// axis 1
	row := make([]complex128, n1)
	for i0 := 0; i0 < n0; i0++ {
		for i2 := 0; i2 < n2; i2++ {
			for i1 := 0; i1 < n1; i1++ {
				row[i1] = want[(i0*n1+i1)*n2+i2]
			}
			out := naiveDFT(row)
			for i1 := 0; i1 < n1; i1++ {
				want[(i0*n1+i1)*n2+i2] = out[i1]
			}
		}
	}
	// axis 0
	col := make([]complex128, n0)
	for i1 := 0; i1 < n1; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			for i0 := 0; i0 < n0; i0++ {
				col[i0] = want[(i0*n1+i1)*n2+i2]
			}
			out := naiveDFT(col)
			for i0 := 0; i0 < n0; i0++ {
				want[(i0*n1+i1)*n2+i2] = out[i0]
			}
		}
	}
	p := NewPlan3(n0, n1, n2)
	p.Forward(data)
	if d := maxDiff(data, want); d > 1e-9 {
		t.Errorf("3d diff %g", d)
	}
	// Round trip.
	p.Inverse(data)
}

func TestPlan3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewPlan3(8, 8, 8)
	x := randomVec(512, rng)
	y := append([]complex128(nil), x...)
	p.Forward(y)
	p.Inverse(y)
	if d := maxDiff(x, y); d > 1e-10 {
		t.Errorf("3d round trip diff %g", d)
	}
}

func BenchmarkForward1024(b *testing.B) {
	p := NewPlan(1024)
	x := randomVec(1024, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkForward160(b *testing.B) {
	// Non-power-of-two size typical of per-rank pencil lengths (Table I).
	p := NewPlan(160)
	x := randomVec(160, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}
