package fft

import (
	"math"
	"sync"
)

// bluestein implements the chirp-z transform for an arbitrary length n via a
// zero-padded circular convolution of length m = nextpow2(2n-1). It handles
// the large-prime cofactors the mixed-radix recursion cannot split.
type bluestein struct {
	n    int
	m    int
	w    []complex128 // chirp: w[j] = exp(-iπ j²/n), j² reduced mod 2n
	bHat []complex128 // FFT of the conjugate chirp, padded circularly
	sub  *Plan        // power-of-two plan of length m
	pool sync.Pool
}

func newBluestein(n int) *bluestein {
	m := 1
	for m < 2*n-1 {
		m *= 2
	}
	b := &bluestein{n: n, m: m}
	b.w = make([]complex128, n)
	for j := 0; j < n; j++ {
		// j² mod 2n keeps the argument small for large j.
		jj := (j * j) % (2 * n)
		s, c := math.Sincos(-math.Pi * float64(jj) / float64(n))
		b.w[j] = complex(c, s)
	}
	bVec := make([]complex128, m)
	for j := 0; j < n; j++ {
		cj := complex(real(b.w[j]), -imag(b.w[j]))
		bVec[j] = cj
		if j > 0 {
			bVec[m-j] = cj
		}
	}
	b.sub = NewPlan(m)
	b.sub.Forward(bVec)
	b.bHat = bVec
	b.pool.New = func() any {
		buf := make([]complex128, m)
		return &buf
	}
	return b
}

// transform computes the in-place DFT of data (length n).
func (b *bluestein) transform(data []complex128) {
	bufp := b.pool.Get().(*[]complex128)
	a := *bufp
	for j := 0; j < b.n; j++ {
		a[j] = data[j] * b.w[j]
	}
	for j := b.n; j < b.m; j++ {
		a[j] = 0
	}
	b.sub.Forward(a)
	for j := range a {
		a[j] *= b.bHat[j]
	}
	b.sub.Inverse(a)
	for k := 0; k < b.n; k++ {
		data[k] = a[k] * b.w[k]
	}
	b.pool.Put(bufp)
}
