package fft

import "fmt"

// Plan3 performs serial 3-D complex transforms on an n0×n1×n2 array stored
// row-major (index = (i0·n1 + i1)·n2 + i2). It is used by tests and by
// single-rank runs; distributed transforms live in package pfft.
type Plan3 struct {
	n0, n1, n2 int
	p0, p1, p2 *Plan
}

// NewPlan3 creates a 3-D plan. Dimensions may differ and need not be powers
// of two.
func NewPlan3(n0, n1, n2 int) *Plan3 {
	p := &Plan3{n0: n0, n1: n1, n2: n2}
	p.p2 = NewPlan(n2)
	if n1 == n2 {
		p.p1 = p.p2
	} else {
		p.p1 = NewPlan(n1)
	}
	switch {
	case n0 == n2:
		p.p0 = p.p2
	case n0 == n1:
		p.p0 = p.p1
	default:
		p.p0 = NewPlan(n0)
	}
	return p
}

// Len returns the total number of elements n0·n1·n2.
func (p *Plan3) Len() int { return p.n0 * p.n1 * p.n2 }

// Forward computes the in-place 3-D forward DFT.
func (p *Plan3) Forward(data []complex128) { p.apply(data, false) }

// Inverse computes the in-place 3-D inverse DFT scaled by 1/(n0·n1·n2).
func (p *Plan3) Inverse(data []complex128) { p.apply(data, true) }

func (p *Plan3) apply(data []complex128, inverse bool) {
	if len(data) != p.Len() {
		panic(fmt.Sprintf("fft: 3d data length %d != %d", len(data), p.Len()))
	}
	n0, n1, n2 := p.n0, p.n1, p.n2
	do := func(pl *Plan, row []complex128) {
		if inverse {
			pl.Inverse(row)
		} else {
			pl.Forward(row)
		}
	}
	// Axis 2: contiguous rows.
	for r := 0; r < n0*n1; r++ {
		do(p.p2, data[r*n2:(r+1)*n2])
	}
	// Axis 1: stride n2 within each i0 plane.
	row1 := make([]complex128, n1)
	for i0 := 0; i0 < n0; i0++ {
		base := i0 * n1 * n2
		for i2 := 0; i2 < n2; i2++ {
			for i1 := 0; i1 < n1; i1++ {
				row1[i1] = data[base+i1*n2+i2]
			}
			do(p.p1, row1)
			for i1 := 0; i1 < n1; i1++ {
				data[base+i1*n2+i2] = row1[i1]
			}
		}
	}
	// Axis 0: stride n1·n2.
	row0 := make([]complex128, n0)
	s := n1 * n2
	for i1 := 0; i1 < n1; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			off := i1*n2 + i2
			for i0 := 0; i0 < n0; i0++ {
				row0[i0] = data[off+i0*s]
			}
			do(p.p0, row0)
			for i0 := 0; i0 < n0; i0++ {
				data[off+i0*s] = row0[i0]
			}
		}
	}
}
