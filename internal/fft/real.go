package fft

import "fmt"

// Real-to-complex transforms exploiting Hermitian symmetry: a real sequence
// of length n has only n/2+1 independent spectral coefficients, so the
// forward transform and all k-space work on real fields (density,
// acceleration components) is halved. For even n the transform runs through
// one complex FFT of length n/2 plus an O(n) untangling pass — the classic
// packed-real algorithm HACC's production pencil FFT uses; odd lengths fall
// back to a full complex transform (the half spectrum is still returned, so
// callers are oblivious).

// HalfLen returns the number of independent spectral coefficients of a real
// transform of length n: n/2+1 (for both parities of n).
func (p *Plan) HalfLen() int { return p.n/2 + 1 }

// half returns the lazily-created length-n/2 plan (even n only).
func (p *Plan) half() *Plan {
	p.halfOnce.Do(func() { p.halfPlan = NewPlan(p.n / 2) })
	return p.halfPlan
}

// ForwardReal computes the forward DFT of the real sequence src (length n),
// storing the non-negative-frequency half spectrum X[0..n/2] into dst
// (length HalfLen). src is left untouched. The spectral convention matches
// Forward: X[k] = Σ_j src[j]·exp(-2πi jk/n).
func (p *Plan) ForwardReal(dst []complex128, src []float64) {
	n := p.n
	if len(src) != n {
		panic(fmt.Sprintf("fft: real input length %d != plan length %d", len(src), n))
	}
	if len(dst) != p.HalfLen() {
		panic(fmt.Sprintf("fft: half-spectrum length %d != %d", len(dst), p.HalfLen()))
	}
	if n == 1 {
		dst[0] = complex(src[0], 0)
		return
	}
	bufp := p.scratch.Get().(*[]complex128)
	buf := *bufp
	if n%2 != 0 {
		// Odd length: full complex transform, keep the first n/2+1 modes.
		tmp := buf[:n]
		for j, v := range src {
			tmp[j] = complex(v, 0)
		}
		p.Forward(tmp)
		copy(dst, tmp[:p.HalfLen()])
		p.scratch.Put(bufp)
		return
	}
	// Even length: pack pairs into a half-length complex sequence
	// z[j] = src[2j] + i·src[2j+1], transform, and untangle with
	//   E[k] = (Z[k] + conj(Z[m-k]))/2        (spectrum of even samples)
	//   O[k] = (Z[k] - conj(Z[m-k]))/(2i)     (spectrum of odd samples)
	//   X[k] = E[k] + ω_n^k·O[k].
	m := n / 2
	z := buf[:m]
	for j := 0; j < m; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	p.half().Forward(z)
	// k = 0 and k = m: purely real endpoints.
	dst[0] = complex(real(z[0])+imag(z[0]), 0)
	dst[m] = complex(real(z[0])-imag(z[0]), 0)
	for k := 1; k < m; k++ {
		zk := z[k]
		zc := z[m-k]
		e := complex(real(zk)+real(zc), imag(zk)-imag(zc)) * 0.5
		o := complex(imag(zk)+imag(zc), real(zc)-real(zk)) * 0.5
		dst[k] = e + p.tw[k]*o
	}
	p.scratch.Put(bufp)
}

// InverseReal computes the inverse DFT of the half spectrum src (length
// HalfLen, assumed Hermitian-consistent: the implied negative frequencies
// are conj(src)), storing the real result into dst (length n), scaled by
// 1/n so that InverseReal(ForwardReal(x)) == x. src is left untouched.
func (p *Plan) InverseReal(dst []float64, src []complex128) {
	n := p.n
	if len(dst) != n {
		panic(fmt.Sprintf("fft: real output length %d != plan length %d", len(dst), n))
	}
	if len(src) != p.HalfLen() {
		panic(fmt.Sprintf("fft: half-spectrum length %d != %d", len(src), p.HalfLen()))
	}
	if n == 1 {
		dst[0] = real(src[0])
		return
	}
	bufp := p.scratch.Get().(*[]complex128)
	buf := *bufp
	if n%2 != 0 {
		// Odd length: rebuild the full spectrum by conjugate symmetry.
		tmp := buf[:n]
		copy(tmp, src)
		for k := p.HalfLen(); k < n; k++ {
			v := src[n-k]
			tmp[k] = complex(real(v), -imag(v))
		}
		p.Inverse(tmp)
		for j := 0; j < n; j++ {
			dst[j] = real(tmp[j])
		}
		p.scratch.Put(bufp)
		return
	}
	// Even length: re-tangle into the half-length packed spectrum
	// Z[k] = E[k] + i·O[k] with
	//   E[k] = (X[k] + conj(X[m-k]))/2, O[k] = ω_n^{-k}·(X[k] - conj(X[m-k]))/2,
	// then one half-length inverse FFT unpacks to the interleaved reals.
	m := n / 2
	z := buf[:m]
	e0 := (real(src[0]) + real(src[m])) * 0.5
	o0 := (real(src[0]) - real(src[m])) * 0.5
	z[0] = complex(e0, o0)
	for k := 1; k < m; k++ {
		xk := src[k]
		xc := src[m-k]
		e := complex(real(xk)+real(xc), imag(xk)-imag(xc)) * 0.5
		d := complex(real(xk)-real(xc), imag(xk)+imag(xc)) * 0.5
		w := p.tw[k]
		o := d * complex(real(w), -imag(w)) // ω_n^{-k} = conj(ω_n^k)
		z[k] = e + complex(-imag(o), real(o))
	}
	p.half().Inverse(z)
	for j := 0; j < m; j++ {
		dst[2*j] = real(z[j])
		dst[2*j+1] = imag(z[j])
	}
	p.scratch.Put(bufp)
}

// ForwardRealBatch applies ForwardReal to `rows` contiguous real rows of
// length n, writing half-spectrum rows of length HalfLen back to back.
func (p *Plan) ForwardRealBatch(dst []complex128, src []float64, rows int) {
	nh := p.HalfLen()
	if len(src) != rows*p.n || len(dst) != rows*nh {
		panic(fmt.Sprintf("fft: real batch %d/%d != %d rows × %d/%d",
			len(src), len(dst), rows, p.n, nh))
	}
	for r := 0; r < rows; r++ {
		p.ForwardReal(dst[r*nh:(r+1)*nh], src[r*p.n:(r+1)*p.n])
	}
}

// InverseRealBatch applies InverseReal to `rows` contiguous half-spectrum
// rows, writing real rows of length n back to back.
func (p *Plan) InverseRealBatch(dst []float64, src []complex128, rows int) {
	nh := p.HalfLen()
	if len(dst) != rows*p.n || len(src) != rows*nh {
		panic(fmt.Sprintf("fft: real batch %d/%d != %d rows × %d/%d",
			len(dst), len(src), rows, p.n, nh))
	}
	for r := 0; r < rows; r++ {
		p.InverseReal(dst[r*p.n:(r+1)*p.n], src[r*nh:(r+1)*nh])
	}
}
