// Package fft provides fast Fourier transforms of arbitrary length, built
// from scratch: a mixed-radix Cooley-Tukey decomposition with specialized
// radix-2/3/4 butterflies, generic small-prime butterflies, and Bluestein's
// chirp-z algorithm for lengths containing large prime factors. HACC
// deliberately avoids vendor FFT libraries (paper §I); this package plays
// the role of its hand-rolled FFT. PR 2 added the real-to-complex path
// (ForwardReal/InverseReal and their batch forms) via the packed
// half-length complex transform for even n, which is what the distributed
// half-spectrum pipeline in pfft builds on.
//
// A Plan is immutable after creation and safe for concurrent use by
// multiple goroutines; per-call scratch comes from an internal pool.
package fft
